// Package synth generates deterministic synthetic RDF dataset pairs that
// stand in for the paper's real Linked Open Data dumps (Table 1). Each
// profile is tuned so that the PARIS baseline's initial candidate links
// land in the same quality regime the paper reports for that dataset
// pair — low recall (DBpedia-NYTimes), low precision (DBpedia-Drugbank),
// both low (DBpedia-Lexvo), and so on — which is what ALEX's behaviour
// depends on. See DESIGN.md for the substitution rationale.
//
// The generator controls four phenomena:
//
//   - exact pairs: matched entities with identical key literals, which
//     the PARIS baseline finds (recall knob);
//   - variant pairs: matched entities whose names/dates are perturbed
//     onto a dense similarity continuum that ALEX's range exploration
//     can walk (the links ALEX discovers);
//   - trap pairs: "false friends" sharing exact values while being
//     different individuals, which PARIS links wrongly (precision knob);
//   - a shared non-distinctive type value (owl:Thing-like) producing the
//     feature whose exploration floods the candidate set — the behaviour
//     the rollback optimization exists for (§4.2, §6.3).
package synth

import (
	"fmt"
	"math/rand"
	"time"

	"alex/internal/links"
	"alex/internal/rdf"
)

// Profile describes one synthetic dataset pair.
type Profile struct {
	// Name identifies the profile ("dbpedia-nytimes", ...).
	Name string
	// Description says which paper experiment the profile backs.
	Description string
	// N1, N2 are entity counts of dataset 1 and dataset 2 (including
	// matched, trap and filler entities).
	N1, N2 int
	// Matched is the number of ground-truth pairs.
	Matched int
	// ExactFrac is the fraction of matched pairs whose key literals are
	// identical on both sides (what the PARIS baseline can find).
	ExactFrac float64
	// Traps is the number of false-friend pairs (exact shared values,
	// different individuals).
	Traps int
	// AmbiguousFrac adds unmatched dataset-2 entities whose names are
	// weak variants of matched names (wrong candidates inside
	// exploration ranges), as a fraction of Matched.
	AmbiguousFrac float64
	// SharedTypeFrac is the fraction of entities per side carrying the
	// shared non-distinctive type literal.
	SharedTypeFrac float64
	// VariantNoiseMax is the maximum number of perturbation operations
	// applied to a non-exact matched pair (0 means the default of 3).
	// Lower values cluster correct links tightly in feature-score space,
	// the regime of the paper's specific-domain experiments where a
	// handful of feedback items discovers most missing links.
	VariantNoiseMax int
	// Skewed selects the skewed-cardinality generator (see runSkewed)
	// instead of the paper-profile generator: correlated category/type
	// values plus a hub-concentrated connectedWith fan-out, built so
	// static CountMatch join ordering is provably wrong. Used by the
	// adaptive-execution benchmarks and equivalence tests.
	Skewed bool
	// EpisodeSize is the feedback episode size the paper uses with this
	// pair (1000 in batch mode, 10 in the specific-domain setting).
	EpisodeSize int
	// Partitions is the equal-size partition count for the pair.
	Partitions int
	// Seed drives all randomness for reproducibility.
	Seed int64
}

// Dataset is a generated dataset pair with ground truth.
type Dataset struct {
	Profile     Profile
	Dict        *rdf.Dict
	G1, G2      *rdf.Graph
	Entities1   []rdf.ID
	Entities2   []rdf.ID
	GroundTruth links.Set
}

// Profiles returns all built-in profiles in presentation order, one per
// dataset pair used in the paper's evaluation.
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "dbpedia-nytimes",
			Description: "Figure 2a: good initial precision, bad recall",
			N1:          1200, N2: 700, Matched: 500,
			ExactFrac: 0.20, Traps: 12, AmbiguousFrac: 0.6, SharedTypeFrac: 0.10,
			EpisodeSize: 1000, Partitions: 9, Seed: 101,
		},
		{
			Name:        "dbpedia-drugbank",
			Description: "Figure 2b: bad initial precision, very good recall",
			N1:          450, N2: 520, Matched: 150,
			ExactFrac: 0.97, Traps: 330, AmbiguousFrac: 0.2, SharedTypeFrac: 0.10,
			EpisodeSize: 1000, Partitions: 6, Seed: 102,
		},
		{
			Name:        "dbpedia-lexvo",
			Description: "Figure 2c: both precision and recall low initially",
			N1:          700, N2: 450, Matched: 300,
			ExactFrac: 0.35, Traps: 160, AmbiguousFrac: 0.5, SharedTypeFrac: 0.12,
			EpisodeSize: 1000, Partitions: 6, Seed: 103,
		},
		{
			Name:        "opencyc-nytimes",
			Description: "Figure 3a",
			N1:          700, N2: 420, Matched: 280,
			ExactFrac: 0.25, Traps: 10, AmbiguousFrac: 0.5, SharedTypeFrac: 0.10,
			EpisodeSize: 1000, Partitions: 6, Seed: 104,
		},
		{
			Name:        "opencyc-drugbank",
			Description: "Figure 3b",
			N1:          260, N2: 280, Matched: 80,
			ExactFrac: 0.95, Traps: 150, AmbiguousFrac: 0.2, SharedTypeFrac: 0.10,
			EpisodeSize: 1000, Partitions: 4, Seed: 105,
		},
		{
			Name:        "opencyc-lexvo",
			Description: "Figure 3c",
			N1:          220, N2: 160, Matched: 70,
			ExactFrac: 0.40, Traps: 35, AmbiguousFrac: 0.4, SharedTypeFrac: 0.12,
			EpisodeSize: 1000, Partitions: 3, Seed: 106,
		},
		{
			Name:        "dbpedia-dogfood",
			Description: "Figure 4a: specific domain (publications), episode size 10",
			N1:          280, N2: 220, Matched: 100,
			ExactFrac: 0.50, Traps: 25, AmbiguousFrac: 0.4, SharedTypeFrac: 0.12, VariantNoiseMax: 1,
			EpisodeSize: 10, Partitions: 3, Seed: 107,
		},
		{
			Name:        "opencyc-dogfood",
			Description: "Figure 4b: specific domain (publications), episode size 10",
			N1:          130, N2: 110, Matched: 45,
			ExactFrac: 0.50, Traps: 12, AmbiguousFrac: 0.4, SharedTypeFrac: 0.12, VariantNoiseMax: 1,
			EpisodeSize: 10, Partitions: 2, Seed: 108,
		},
		{
			Name:        "dbpedia-nba-nytimes",
			Description: "Figure 4c: NBA players extract, episode size 10",
			N1:          120, N2: 95, Matched: 50,
			ExactFrac: 0.40, Traps: 10, AmbiguousFrac: 0.5, SharedTypeFrac: 0.10, VariantNoiseMax: 1,
			EpisodeSize: 10, Partitions: 2, Seed: 109,
		},
		{
			Name:        "opencyc-nba-nytimes",
			Description: "Figure 4d: NBA players extract, episode size 10",
			N1:          60, N2: 50, Matched: 25,
			ExactFrac: 0.40, Traps: 5, AmbiguousFrac: 0.5, SharedTypeFrac: 0.10, VariantNoiseMax: 1,
			EpisodeSize: 10, Partitions: 2, Seed: 110,
		},
		{
			Name:        "dbpedia-opencyc",
			Description: "Figure 8: multi-domain stress test, largest pair",
			N1:          2400, N2: 1500, Matched: 1000,
			ExactFrac: 0.30, Traps: 120, AmbiguousFrac: 0.6, SharedTypeFrac: 0.10,
			EpisodeSize: 1000, Partitions: 12, Seed: 111,
		},
		{
			Name:        "skewed-hub",
			Description: "adaptive-execution stress: hub fan-out makes static join ordering wrong",
			N1:          1000, N2: 1000, Matched: 1000, Skewed: true,
			EpisodeSize: 1000, Partitions: 4, Seed: 112,
		},
	}
}

// ProfileByName returns the named built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Scale returns a copy of p with all entity counts multiplied by f
// (minimum 1 each), for quick tests and benchmarks.
func (p Profile) Scale(f float64) Profile {
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	p.N1 = scale(p.N1)
	p.N2 = scale(p.N2)
	p.Matched = scale(p.Matched)
	p.Traps = int(float64(p.Traps) * f)
	return p
}

const (
	ns1 = "http://ds1.example.org/"
	ns2 = "http://ds2.example.org/"
)

// Predicate IRIs of the two vocabularies.
var (
	P1Label = rdf.IRI(ns1 + "onto/label")
	P1Birth = rdf.IRI(ns1 + "onto/birthDate")
	P1Type  = rdf.IRI(ns1 + "onto/type")
	P1Cat   = rdf.IRI(ns1 + "onto/category")
	P1Place = rdf.IRI(ns1 + "onto/birthPlace")
	P1Rel   = rdf.IRI(ns1 + "onto/relatedTo")

	P2Name  = rdf.IRI(ns2 + "prop/name")
	P2Born  = rdf.IRI(ns2 + "prop/born")
	P2Kind  = rdf.IRI(ns2 + "prop/kind")
	P2Group = rdf.IRI(ns2 + "prop/group")
	P2Place = rdf.IRI(ns2 + "prop/hometown")
	P2Rel   = rdf.IRI(ns2 + "prop/connectedWith")
)

// E1IRI returns the IRI of dataset-1 entity i.
func E1IRI(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("%sresource/E%d", ns1, i)) }

// E2IRI returns the IRI of dataset-2 entity i.
func E2IRI(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("%sresource/R%d", ns2, i)) }

// Generate builds the dataset pair for a profile. Generation is fully
// deterministic given Profile.Seed.
func Generate(p Profile) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	d := rdf.NewDict()
	ds := &Dataset{
		Profile: p, Dict: d,
		G1: rdf.NewGraphWithDict(d), G2: rdf.NewGraphWithDict(d),
		GroundTruth: links.NewSet(),
	}
	g := &generator{p: p, rng: rng, ds: ds}
	if p.Skewed {
		g.runSkewed()
	} else {
		g.run()
	}
	return ds
}

type person struct {
	name  string
	born  time.Time
	cat   string
	place string
}

type generator struct {
	p      Profile
	rng    *rand.Rand
	ds     *Dataset
	n1     int // next dataset-1 entity index
	n2     int // next dataset-2 entity index
	cats   []string
	places []string
}

func (g *generator) run() {
	g.cats = categories(g.rng)
	g.places = places(g.rng, g.p.N1/3+8)
	matchedPeople := make([]person, g.p.Matched)
	for i := range matchedPeople {
		matchedPeople[i] = g.randomPerson()
	}

	exactCount := int(g.p.ExactFrac * float64(g.p.Matched))

	// Matched pairs.
	for i, per := range matchedPeople {
		e1 := g.addEntity1(per)
		var e2 rdf.ID
		if i < exactCount {
			e2 = g.addEntity2(per, 0)
		} else {
			e2 = g.addEntity2(per, 1+g.rng.Intn(g.variantNoiseMax()))
		}
		g.ds.GroundTruth.Add(links.Link{E1: e1, E2: e2})
	}

	// Trap pairs: identical key values, different individuals.
	for t := 0; t < g.p.Traps; t++ {
		per := g.randomPerson()
		g.addEntity1(per)
		g.addEntity2(per, 0)
		// No ground-truth entry: these are false friends.
	}

	// Ambiguous dataset-2 entities: weak variants of matched names.
	nAmb := int(g.p.AmbiguousFrac * float64(g.p.Matched))
	for a := 0; a < nAmb && a < len(matchedPeople); a++ {
		src := matchedPeople[g.rng.Intn(len(matchedPeople))]
		amb := g.randomPerson()
		amb.name = g.perturbName(src.name, 2+g.rng.Intn(3))
		g.addEntity2(amb, 0)
	}

	// Fillers up to the profile sizes.
	for g.n1 < g.p.N1 {
		g.addEntity1(g.randomPerson())
	}
	for g.n2 < g.p.N2 {
		g.addEntity2(g.randomPerson(), 0)
	}

	// relatedTo chains give the PARIS propagation stage something to
	// work with; chains link consecutive entities within each dataset.
	for i := 1; i < g.p.Matched; i++ {
		if g.rng.Float64() < 0.3 {
			g.ds.G1.Insert(rdf.Triple{S: E1IRI(i - 1), P: P1Rel, O: E1IRI(i)})
			g.ds.G2.Insert(rdf.Triple{S: E2IRI(i - 1), P: P2Rel, O: E2IRI(i)})
		}
	}

	g.ds.Entities1 = subjectsOnly(g.ds.G1, ns1+"resource/")
	g.ds.Entities2 = subjectsOnly(g.ds.G2, ns2+"resource/")
}

// Skewed-hub generator shape. Every entity i belongs to category
// group "g{i%skewGroups}". The seed group (g7) is a hub: each of its
// dataset-2 twins fans out skewFan connectedWith edges, while only one
// non-hub entity in skewBgEvery carries a single background edge; and
// the hub group is mostly NOT "active" (one in skewActiveEvery), while
// every non-hub entity is. The counts are all linear in N, so at any
// scale the static planner — which sees ~0.84·N connectedWith triples
// versus ~0.91·N "active" type triples and divides both by the same
// bound-variable factor — always schedules connectedWith before the
// type filter after the category pattern. That order is wrong by
// construction: for hub-group rows connectedWith expands skewFan× per
// row where the type filter would first shrink them 10×. Observed
// cardinalities expose this; posting-list counts cannot, because the
// skew lives in the correlation between category and fan-out.
const (
	skewGroups      = 10
	skewSeedGroup   = 7
	skewFan         = 8
	skewBgEvery     = 25
	skewActiveEvery = 10
)

// SkewSeedCategory is the hub category value skewed-hub queries select.
const SkewSeedCategory = "g7"

// runSkewed builds the skewed-hub dataset pair. Both sides keep the
// standard predicate vocabulary (label/birth/category/type on ds1,
// name/born/group/kind on ds2) so generic cross-source queries work,
// and every entity pair is ground-truth matched so sameAs resolution
// is exercised on every join.
func (g *generator) runSkewed() {
	g.cats = categories(g.rng)
	g.places = places(g.rng, g.p.N1/3+8)
	n := g.p.N1
	if g.p.N2 < n {
		n = g.p.N2
	}
	g1, g2 := g.ds.G1, g.ds.G2
	for i := 0; i < n; i++ {
		per := g.randomPerson()
		cat := fmt.Sprintf("g%d", i%skewGroups)
		hub := i%skewGroups == skewSeedGroup
		status := "active"
		if hub && (i/skewGroups)%skewActiveEvery != 0 {
			status = "idle"
		}

		e1 := E1IRI(i)
		g1.Insert(rdf.Triple{S: e1, P: P1Label, O: rdf.Literal(per.name)})
		g1.Insert(rdf.Triple{S: e1, P: P1Birth, O: rdf.TypedLiteral(per.born.Format("2006-01-02"), rdf.XSDDate)})
		g1.Insert(rdf.Triple{S: e1, P: P1Cat, O: rdf.Literal(cat)})
		g1.Insert(rdf.Triple{S: e1, P: P1Place, O: rdf.Literal(per.place)})
		g1.Insert(rdf.Triple{S: e1, P: P1Type, O: rdf.Literal(status)})

		e2 := E2IRI(i)
		g2.Insert(rdf.Triple{S: e2, P: P2Name, O: rdf.Literal(per.name)})
		g2.Insert(rdf.Triple{S: e2, P: P2Born, O: rdf.TypedLiteral(per.born.Format("2006-01-02"), rdf.XSDDate)})
		g2.Insert(rdf.Triple{S: e2, P: P2Group, O: rdf.Literal(cat)})
		g2.Insert(rdf.Triple{S: e2, P: P2Kind, O: rdf.Literal(fmt.Sprintf("k%d", i%5))})
		g2.Insert(rdf.Triple{S: e2, P: P2Place, O: rdf.Literal(per.place)})
		if hub {
			for j := 0; j < skewFan; j++ {
				item := rdf.IRI(fmt.Sprintf("%sitem/I%d", ns2, i*skewFan+j))
				g2.Insert(rdf.Triple{S: e2, P: P2Rel, O: item})
			}
		} else if i%skewBgEvery == 0 {
			g2.Insert(rdf.Triple{S: e2, P: P2Rel, O: rdf.IRI(fmt.Sprintf("%sitem/I%d", ns2, n*skewFan+i))})
		}

		id1, _ := g1.Dict().Lookup(e1)
		id2, _ := g2.Dict().Lookup(e2)
		g.ds.GroundTruth.Add(links.Link{E1: id1, E2: id2})
	}
	g.ds.Entities1 = subjectsOnly(g1, ns1+"resource/")
	g.ds.Entities2 = subjectsOnly(g2, ns2+"resource/")
}

func subjectsOnly(gr *rdf.Graph, prefix string) []rdf.ID {
	var out []rdf.ID
	for _, s := range gr.SubjectIDs() {
		t := gr.Dict().Term(s)
		if t.IsIRI() && len(t.Value) > len(prefix) && t.Value[:len(prefix)] == prefix {
			out = append(out, s)
		}
	}
	return out
}

func (g *generator) addEntity1(per person) rdf.ID {
	s := E1IRI(g.n1)
	g.n1++
	gr := g.ds.G1
	gr.Insert(rdf.Triple{S: s, P: P1Label, O: rdf.Literal(per.name)})
	gr.Insert(rdf.Triple{S: s, P: P1Birth, O: rdf.TypedLiteral(per.born.Format("2006-01-02"), rdf.XSDDate)})
	gr.Insert(rdf.Triple{S: s, P: P1Cat, O: rdf.Literal(per.cat)})
	gr.Insert(rdf.Triple{S: s, P: P1Place, O: rdf.Literal(per.place)})
	if g.rng.Float64() < g.p.SharedTypeFrac {
		gr.Insert(rdf.Triple{S: s, P: P1Type, O: rdf.Literal("Thing")})
	} else {
		gr.Insert(rdf.Triple{S: s, P: P1Type, O: rdf.Literal("Ds1" + per.cat + "Entity")})
	}
	id, _ := gr.Dict().Lookup(s)
	return id
}

// addEntity2 writes a dataset-2 entity. noise 0 copies the person's key
// values verbatim; larger values apply that many name perturbations and
// shift the date by up to 60 days (never 0), putting the pair on the
// similarity continuum instead of at exactly 1.0.
func (g *generator) addEntity2(per person, noise int) rdf.ID {
	s := E2IRI(g.n2)
	g.n2++
	gr := g.ds.G2
	name := per.name
	born := per.born
	if noise > 0 {
		name = g.perturbName(name, noise)
		born = born.AddDate(0, 0, 1+g.rng.Intn(60))
	}
	gr.Insert(rdf.Triple{S: s, P: P2Name, O: rdf.Literal(name)})
	gr.Insert(rdf.Triple{S: s, P: P2Born, O: rdf.TypedLiteral(born.Format("2006-01-02"), rdf.XSDDate)})
	gr.Insert(rdf.Triple{S: s, P: P2Place, O: rdf.Literal(per.place)})
	gr.Insert(rdf.Triple{S: s, P: P2Group, O: rdf.Literal(per.cat)})
	if g.rng.Float64() < g.p.SharedTypeFrac {
		gr.Insert(rdf.Triple{S: s, P: P2Kind, O: rdf.Literal("Thing")})
	} else {
		gr.Insert(rdf.Triple{S: s, P: P2Kind, O: rdf.Literal("ds2:" + per.cat)})
	}
	id, _ := gr.Dict().Lookup(s)
	return id
}

func (g *generator) variantNoiseMax() int {
	if g.p.VariantNoiseMax > 0 {
		return g.p.VariantNoiseMax
	}
	return 3
}

func (g *generator) randomPerson() person {
	return person{
		name:  g.randomName(),
		born:  randomDate(g.rng),
		cat:   g.cats[g.rng.Intn(len(g.cats))],
		place: g.places[g.rng.Intn(len(g.places))],
	}
}

var (
	onsets = []string{"b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "t", "tr", "v", "w", "z"}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas  = []string{"", "n", "r", "s", "l", "m", "nd", "rt", "ck", "x"}
)

func syllable(rng *rand.Rand) string {
	return onsets[rng.Intn(len(onsets))] + nuclei[rng.Intn(len(nuclei))] + codas[rng.Intn(len(codas))]
}

func capitalized(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

func (g *generator) randomName() string {
	first := capitalized(syllable(g.rng) + syllable(g.rng))
	last := capitalized(syllable(g.rng) + syllable(g.rng) + syllable(g.rng))
	return first + " " + last
}

// randomDate picks a week-aligned date over a 100-year span. The
// quantization makes shared birth dates mildly common, so the date
// relation's inverse functionality is below 1 and the PARIS baseline
// cannot link on a date collision alone (realistic for people data).
func randomDate(rng *rand.Rand) time.Time {
	base := time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.AddDate(0, 0, 7*rng.Intn(5200))
}

func categories(rng *rand.Rand) []string {
	cats := make([]string, 150)
	for i := range cats {
		cats[i] = capitalized(syllable(rng) + syllable(rng))
	}
	return cats
}

func places(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = capitalized(syllable(rng)+syllable(rng)) + " " + []string{"City", "Falls", "Springs", "Harbor", "Heights"}[rng.Intn(5)]
	}
	return out
}

// perturbName applies n random edits: token reorder, typos, initialing,
// or a suffix. The resulting similarity to the original decreases with
// n, populating a continuum that range exploration can traverse.
func (g *generator) perturbName(name string, n int) string {
	out := name
	for i := 0; i < n; i++ {
		switch g.rng.Intn(5) {
		case 0: // "Last, First"
			out = reorderName(out)
		case 1, 2: // typo: swap adjacent characters
			out = swapChars(out, g.rng)
		case 3: // drop a character
			out = dropChar(out, g.rng)
		case 4: // append a suffix token
			out = out + " " + []string{"Jr", "Sr", "II", "III"}[g.rng.Intn(4)]
		}
	}
	if out == name {
		out = swapChars(out, g.rng)
	}
	return out
}

func reorderName(name string) string {
	sp := -1
	for i := 0; i < len(name); i++ {
		if name[i] == ' ' {
			sp = i
			break
		}
	}
	if sp < 0 {
		return name
	}
	return name[sp+1:] + ", " + name[:sp]
}

func swapChars(s string, rng *rand.Rand) string {
	if len(s) < 3 {
		return s
	}
	b := []byte(s)
	for attempt := 0; attempt < 10; attempt++ {
		i := 1 + rng.Intn(len(b)-2)
		if b[i] != ' ' && b[i+1] != ' ' && b[i] != b[i+1] {
			b[i], b[i+1] = b[i+1], b[i]
			return string(b)
		}
	}
	return s
}

func dropChar(s string, rng *rand.Rand) string {
	if len(s) < 4 {
		return s
	}
	for attempt := 0; attempt < 10; attempt++ {
		i := 1 + rng.Intn(len(s)-2)
		if s[i] != ' ' {
			return s[:i] + s[i+1:]
		}
	}
	return s
}
