package wal

import (
	"io"
	"os"
)

// OS is the real file system.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Link hardlinks newname to oldname. Not part of the FS interface —
// the store probes for it with a type assertion and falls back to
// copying, so alternative FS implementations stay valid without it.
func (OS) Link(oldname, newname string) error { return os.Link(oldname, newname) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
