package wal

// Typed record envelopes.
//
// Through PR 6 every journal payload was a bare JSON feedback body.
// The fleet's prepare/commit protocol needs to journal three more
// shapes — a prepared transaction, its commit mark, and its abort mark
// — and replay must tell them apart without guessing at JSON fields.
//
// The envelope is two bytes: a 0x00 sentinel (JSON can never start
// with 0x00; the legacy records all start with '{') followed by a kind
// byte, then the payload. DecodeTyped treats any payload without the
// sentinel as a legacy feedback record, so journals written before
// this scheme replay unchanged.

// Kind identifies what a journal payload encodes.
type Kind byte

const (
	// KindFeedback is a single-owner feedback batch: the payload is a
	// FeedbackRequest JSON body. Legacy (unenveloped) records decode as
	// this kind.
	KindFeedback Kind = 'F'
	// KindPrepare is a prepared cross-shard transaction: the payload is
	// a cluster.TxnPrepare JSON body. The links are journaled but not
	// applied until a commit mark (or a peer-resolved outcome) arrives.
	KindPrepare Kind = 'P'
	// KindCommit marks a prepared transaction committed: the payload is
	// a cluster.TxnMark JSON body.
	KindCommit Kind = 'C'
	// KindAbort marks a prepared transaction aborted: the payload is a
	// cluster.TxnMark JSON body.
	KindAbort Kind = 'A'
)

// typedSentinel prefixes enveloped payloads. JSON payloads — the only
// record shape older journals contain — cannot begin with it.
const typedSentinel = 0x00

// EncodeTyped wraps payload in a kind envelope for Append.
func EncodeTyped(k Kind, payload []byte) []byte {
	buf := make([]byte, 2+len(payload))
	buf[0] = typedSentinel
	buf[1] = byte(k)
	copy(buf[2:], payload)
	return buf
}

// DecodeTyped splits a journal payload into its kind and body. Payloads
// without the envelope sentinel are legacy feedback records and decode
// as (KindFeedback, data).
func DecodeTyped(data []byte) (Kind, []byte) {
	if len(data) >= 2 && data[0] == typedSentinel {
		return Kind(data[1]), data[2:]
	}
	return KindFeedback, data
}
