package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	n, err := l.Replay(after, func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("replay count %d != %d", n, len(out))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2, 0)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Data) != fmt.Sprintf("record-%d", i+1) {
			t.Fatalf("record %d = %d %q", i, r.Seq, r.Data)
		}
	}
	if l2.LastSeq() != 5 {
		t.Fatalf("last seq = %d", l2.LastSeq())
	}
	// Replay consumes: a second call yields nothing.
	if again := replayAll(t, l2, 0); len(again) != 0 {
		t.Fatalf("second replay returned %d records", len(again))
	}
	// New appends continue the sequence.
	appendN(t, l2, 6, 6)
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"garbage", "partial-header", "partial-record", "bad-crc"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, 3)
			l.Close()

			path := filepath.Join(dir, journalName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch cut {
			case "garbage":
				data = append(data, []byte("\x99\x88\x77")...)
			case "partial-header":
				data = append(data, 0x0a, 0x00) // 2 of 16 header bytes
			case "partial-record":
				rec := encodeRecord(4, []byte("torn"))
				data = append(data, rec[:len(rec)-2]...)
			case "bad-crc":
				rec := encodeRecord(4, []byte("flipped"))
				rec[len(rec)-1] ^= 0xff
				data = append(data, rec...)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			recs := replayAll(t, l2, 0)
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want the 3 intact ones", len(recs))
			}
			// The bad tail is gone from disk and appends resume cleanly.
			appendN(t, l2, 4, 4)
			l2.Close()
			l3, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer l3.Close()
			if recs := replayAll(t, l3, 0); len(recs) != 4 {
				t.Fatalf("after repair+append: %d records, want 4", len(recs))
			}
		})
	}
}

func TestCheckpointAndIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 4)
	if err := l.Checkpoint(4, []byte("state@4")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 7)
	l.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, state, ok, err := l2.LatestCheckpoint()
	if err != nil || !ok || seq != 4 || string(state) != "state@4" {
		t.Fatalf("checkpoint = %d %q %v %v", seq, state, ok, err)
	}
	recs := replayAll(t, l2, seq)
	if len(recs) != 3 || recs[0].Seq != 5 {
		t.Fatalf("tail replay = %+v", recs)
	}
}

// TestReplaySkipsCheckpointedRecords covers the crash window between a
// durable checkpoint and the journal reset: the journal still holds
// records the checkpoint absorbed, and replay must skip them.
func TestReplaySkipsCheckpointedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	// Forge the crash window: checkpoint written by hand (atomic file),
	// journal untouched.
	ck := encodeRecord(2, []byte("state@2"))
	if err := os.WriteFile(filepath.Join(dir, checkpointName(2)), ck, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, _, ok, _ := l2.LatestCheckpoint()
	if !ok || seq != 2 {
		t.Fatalf("checkpoint seq = %d ok=%v", seq, ok)
	}
	recs := replayAll(t, l2, seq)
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("replay after checkpoint = %+v, want only seq 3", recs)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 2)
	if err := l.Checkpoint(2, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// A corrupt newer checkpoint (e.g. disk corruption) must not win.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(9)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, state, ok, err := l2.LatestCheckpoint()
	if err != nil || !ok || seq != 2 || string(state) != "good" {
		t.Fatalf("fallback checkpoint = %d %q %v %v", seq, state, ok, err)
	}
}

func TestCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		appendN(t, l, i, i)
		if err := l.Checkpoint(uint64(i), []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range names {
		if _, ok := parseCheckpointName(e.Name()); ok {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoints retained, want 2", ckpts)
	}
}

func TestSeqMonotonicAcrossCheckpointOnlyRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	if err := l.Checkpoint(3, []byte("s")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// The journal is empty now; a reopened log must still continue at 4,
	// never reissue sequence numbers the checkpoint covers.
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 {
		t.Fatalf("last seq after restart = %d, want 3", l2.LastSeq())
	}
	appendN(t, l2, 4, 4)
}

// failOpenFS fails every Open with a non-NotExist error, standing in
// for a permission or transient I/O failure on an existing journal.
type failOpenFS struct {
	FS
	err error
}

func (f failOpenFS) Open(name string) (io.ReadCloser, error) { return nil, f.err }

// TestOpenErrorFailsLoudly: an unreadable existing journal must abort
// Open. Swallowing the error as "no journal yet" would silently discard
// acked records and reissue their sequence numbers over the stale file.
func TestOpenErrorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	l.Close()

	_, err = Open(dir, failOpenFS{FS: OS{}, err: fmt.Errorf("injected: permission denied")})
	if err == nil {
		t.Fatal("Open ignored a failing journal read over durable records")
	}
	// A genuinely missing journal still opens as an empty log.
	l2, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("fresh dir: %v", err)
	}
	defer l2.Close()
	if recs := replayAll(t, l2, 0); len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
}

func TestEmptyAndLargePayloads(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1<<20)
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2, 0)
	if len(recs) != 2 || len(recs[0].Data) != 0 || !bytes.Equal(recs[1].Data, big) {
		t.Fatalf("payload round trip failed: %d records", len(recs))
	}
}
