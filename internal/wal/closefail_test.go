package wal_test

import (
	"errors"
	"strings"
	"testing"

	"alex/internal/faultfs"
	"alex/internal/wal"
)

// Close errors on the journal and checkpoint files used to be silently
// dropped (the bug syncerr now flags); these tests pin the fixed
// behavior: a failed close surfaces to the caller and the log refuses
// to keep appending on a handle in an unknown state.

// TestCheckpointResetCloseFailure injects a failure on the journal
// handle's close during Checkpoint's journal reset. The checkpoint is
// already durable at that point, so the error must surface, appends
// must be refused, and a reopen must recover the checkpointed state.
func TestCheckpointResetCloseFailure(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil)
	l, err := wal.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]byte("fed"))
	if err != nil {
		t.Fatal(err)
	}
	// Closes inside Checkpoint: #1 the checkpoint temp file, #2 the
	// journal handle being reset.
	fs.FailCloseAt(2)
	err = l.Checkpoint(seq, []byte("state"))
	if err == nil {
		t.Fatal("Checkpoint succeeded despite journal close failure")
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Checkpoint error = %v, want wrapped ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "journal reset close") {
		t.Fatalf("Checkpoint error = %v, want journal reset close context", err)
	}
	if _, err := l.Append([]byte("more")); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("Append after failed reset close = %v, want ErrBroken", err)
	}

	// The checkpoint itself was durable: a restart recovers it and the
	// log accepts appends again.
	fs.Revive()
	l2, err := wal.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	ckSeq, state, ok, err := l2.LatestCheckpoint()
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint = ok %v, err %v", ok, err)
	}
	if ckSeq != seq || string(state) != "state" {
		t.Fatalf("recovered checkpoint (%d, %q), want (%d, %q)", ckSeq, state, seq, "state")
	}
	if _, err := l2.Append([]byte("after restart")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
}

// TestRepairCloseFailureMarksBroken forces an append's fsync to fail so
// repair runs, then fails the close inside repair: the log must mark
// itself broken instead of appending through a handle it could not
// roll back.
func TestRepairCloseFailureMarksBroken(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil)
	l, err := wal.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("ok")); err != nil { // sync #1
		t.Fatal(err)
	}
	fs.FailSyncAt(2)
	fs.FailCloses(true)
	if _, err := l.Append([]byte("torn")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Append with failing sync = %v, want wrapped ErrInjected", err)
	}
	if _, err := l.Append([]byte("more")); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("Append after failed repair = %v, want ErrBroken", err)
	}

	// Restart over the same directory: the acked record must survive.
	fs.Revive()
	l2, err := wal.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	var recovered []string
	if _, err := l2.Replay(0, func(r wal.Record) error {
		recovered = append(recovered, string(r.Data))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recovered) == 0 || recovered[0] != "ok" {
		t.Fatalf("recovered %q, want the acked record first", recovered)
	}
}
