package wal

import (
	"bytes"
	"testing"
)

func TestTypedRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindFeedback, KindPrepare, KindCommit, KindAbort} {
		payload := []byte(`{"id":"abc"}`)
		gotK, gotP := DecodeTyped(EncodeTyped(k, payload))
		if gotK != k || !bytes.Equal(gotP, payload) {
			t.Fatalf("round trip %c: got (%c, %q)", k, gotK, gotP)
		}
	}
}

func TestTypedLegacyFallback(t *testing.T) {
	// Journals written before the envelope hold bare JSON feedback
	// bodies; they must decode as feedback with the payload untouched.
	legacy := []byte(`{"approve":true,"links":[{"e1":"a","e2":"b"}]}`)
	k, p := DecodeTyped(legacy)
	if k != KindFeedback || !bytes.Equal(p, legacy) {
		t.Fatalf("legacy payload decoded as (%c, %q)", k, p)
	}
}

func TestTypedEmptyPayloads(t *testing.T) {
	k, p := DecodeTyped(EncodeTyped(KindCommit, nil))
	if k != KindCommit || len(p) != 0 {
		t.Fatalf("empty typed payload decoded as (%c, %q)", k, p)
	}
	// Degenerate inputs must not panic and must fall back to legacy.
	if k, _ := DecodeTyped(nil); k != KindFeedback {
		t.Fatalf("nil payload kind %c", k)
	}
	if k, _ := DecodeTyped([]byte{typedSentinel}); k != KindFeedback {
		t.Fatalf("lone sentinel kind %c", k)
	}
}
