// Package wal is the durability layer of alexd: a write-ahead feedback
// journal plus atomic full-state checkpoints.
//
// The contract backing the serving layer's 202 ack on /feedback is:
// every record handed to Append is on stable storage (written and
// fsynced) before Append returns. Restart then reconstructs exactly the
// acknowledged state by loading the newest valid checkpoint and
// replaying the journal records that came after it.
//
// On-disk layout inside the log directory:
//
//	journal.wal             length-prefixed, CRC32-checksummed records
//	checkpoint-<seq>.ckpt   one checkpointed state blob, same framing
//
// Every record carries a monotonically increasing sequence number. A
// checkpoint file is named (and framed) with the sequence number of the
// last record its state includes, which makes replay idempotent: records
// with seq <= checkpoint seq are skipped even if a crash left them in
// the journal. Torn or corrupt journal tails (short write, bad CRC,
// garbage) are detected on open and truncated away; everything before
// the first bad byte is recovered.
//
// All file operations go through the FS interface so tests can inject
// fsync failures, short writes and crash points (internal/faultfs).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// File is the writable-file surface the log needs; *os.File satisfies
// it via osFile.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// FS abstracts the file operations of the log so faults can be
// injected. OS is the real implementation.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to zero length.
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// ReadDir returns the file names (not paths) inside dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory, making renames within it durable.
	SyncDir(dir string) error
}

const (
	journalName      = "journal.wal"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
	tmpSuffix        = ".tmp"

	// headerSize is len(uint32) | crc(uint32) | seq(uint64).
	headerSize = 16
	// maxRecord guards the scanner against absurd length prefixes from
	// corrupt headers.
	maxRecord = 64 << 20
)

// Record is one journal entry: an opaque payload with its sequence
// number.
type Record struct {
	Seq  uint64
	Data []byte
}

// ErrBroken is returned by Append after an unrecoverable write failure:
// the journal file could not be repaired to a clean record boundary, so
// further appends would be unreadable.
var ErrBroken = fmt.Errorf("wal: journal broken (unrepaired partial write)")

// Log is a write-ahead log over one directory. It is not safe for
// concurrent use; callers serialize access (the server does so with a
// mutex, which also batches competing fsyncs).
type Log struct {
	fs     FS
	dir    string
	f      File  // append handle on the journal
	size   int64 // bytes of valid records in the journal
	seq    uint64
	keep   int // checkpoint files to retain
	broken bool
	// pending holds the records scanned at Open until Replay consumes
	// them.
	pending []Record
}

// Open opens (or creates) the log in dir. The journal is scanned and
// any torn or corrupt tail truncated; the surviving records are
// available through Replay exactly once. fs == nil uses the operating
// system.
func Open(dir string, fs FS) (*Log, error) {
	if fs == nil {
		fs = OS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{fs: fs, dir: dir, keep: 2}
	if err := l.scan(); err != nil {
		return nil, err
	}
	f, err := fs.OpenAppend(l.journalPath())
	if err != nil {
		return nil, fmt.Errorf("wal: open journal: %w", err)
	}
	l.f = f
	return l, nil
}

func (l *Log) journalPath() string { return filepath.Join(l.dir, journalName) }

// LastSeq returns the sequence number of the newest record ever
// appended (or recovered), 0 if none.
func (l *Log) LastSeq() uint64 { return l.seq }

// scan reads the journal, validates records, truncates a bad tail, and
// stashes the valid records for Replay. A missing journal is an empty
// log. The checkpoint floor also advances seq so new appends never
// reuse numbers from journal records a checkpoint absorbed.
func (l *Log) scan() error {
	if seq, _, ok, _ := l.LatestCheckpoint(); ok && seq > l.seq {
		l.seq = seq
	}
	rc, err := l.fs.Open(l.journalPath())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil // no journal yet: an empty log
		}
		// Any other error (permissions, transient I/O) must fail startup
		// loudly: treating it as "no journal" would silently discard
		// acked records and reissue their sequence numbers.
		return fmt.Errorf("wal: open journal: %w", err)
	}
	data, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: read journal: %w", err)
	}
	valid := int64(0)
	for int64(len(data))-valid >= headerSize {
		n := binary.LittleEndian.Uint32(data[valid:])
		sum := binary.LittleEndian.Uint32(data[valid+4:])
		if n > maxRecord || valid+headerSize+int64(n) > int64(len(data)) {
			break // torn tail or corrupt length
		}
		body := data[valid+8 : valid+headerSize+int64(n)] // seq || payload
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt record
		}
		seq := binary.LittleEndian.Uint64(body)
		payload := append([]byte(nil), body[8:]...)
		l.pending = append(l.pending, Record{Seq: seq, Data: payload})
		if seq > l.seq {
			l.seq = seq
		}
		valid += headerSize + int64(n)
	}
	l.size = valid
	if valid < int64(len(data)) {
		if err := l.fs.Truncate(l.journalPath(), valid); err != nil {
			return fmt.Errorf("wal: truncate corrupt tail: %w", err)
		}
	}
	return nil
}

// Replay hands every recovered journal record with seq > after to fn,
// in order. It consumes the records scanned at Open; calling it again
// replays nothing. fn returning an error aborts the replay.
func (l *Log) Replay(after uint64, fn func(Record) error) (int, error) {
	recs := l.pending
	l.pending = nil
	n := 0
	for _, r := range recs {
		if r.Seq <= after {
			continue
		}
		if err := fn(r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func encodeRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	copy(buf[headerSize:], payload)
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// Append writes payload as the next record and fsyncs before returning:
// when Append returns nil the record is durable. On a write or sync
// failure the journal is rolled back to the previous record boundary so
// later appends stay readable; if that repair fails the log refuses
// further appends with ErrBroken.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.broken {
		return 0, ErrBroken
	}
	seq := l.seq + 1
	buf := encodeRecord(seq, payload)
	_, werr := l.f.Write(buf)
	var serr error
	if werr == nil {
		serr = l.f.Sync()
	}
	if werr != nil || serr != nil {
		err := werr
		if err == nil {
			err = serr
		}
		l.repair()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	l.size += int64(len(buf))
	return seq, nil
}

// repair rolls the journal file back to the last known-good record
// boundary after a failed append, reopening the append handle. Failure
// to repair marks the log broken.
func (l *Log) repair() {
	if err := l.f.Close(); err != nil {
		// A failed close leaves the handle's state unknown; the torn
		// tail stays on disk for the next Open's scan to truncate.
		l.broken = true
		return
	}
	if err := l.fs.Truncate(l.journalPath(), l.size); err != nil {
		l.broken = true
		return
	}
	f, err := l.fs.OpenAppend(l.journalPath())
	if err != nil {
		l.broken = true
		return
	}
	l.f = f
}

func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", checkpointPrefix, seq, checkpointSuffix)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Checkpoint durably stores state as the full log state up to and
// including record seq, then resets the journal. The write is atomic
// (temp file + fsync + rename + directory fsync): a crash at any point
// leaves either the previous checkpoint or the new one, never a partial
// file that would be trusted. After a successful checkpoint the journal
// is emptied — replay starts from this state — and checkpoints older
// than the retained window are pruned.
func (l *Log) Checkpoint(seq uint64, state []byte) error {
	final := filepath.Join(l.dir, checkpointName(seq))
	tmp := final + tmpSuffix
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	_, werr := f.Write(encodeRecord(seq, state))
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		l.fs.Remove(tmp)
		err := werr
		if err == nil {
			err = serr
		}
		if err == nil {
			err = cerr
		}
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	// The checkpoint is durable; the journal records it absorbed are no
	// longer needed. A crash before (or during) this reset is harmless:
	// replay skips seqs the checkpoint covers.
	if err := l.f.Close(); err != nil {
		// The checkpoint is already durable, but the journal handle is
		// now in an unknown state: refuse appends until the next reset
		// or reopen succeeds.
		l.broken = true
		return fmt.Errorf("wal: journal reset close: %w", err)
	}
	nf, err := l.fs.Create(l.journalPath())
	if err != nil {
		return fmt.Errorf("wal: journal reset: %w", err)
	}
	l.f = nf
	l.size = 0
	l.broken = false
	l.prune(seq)
	return nil
}

// prune removes stale checkpoint files (keeping the newest l.keep) and
// any leftover temp files. Best-effort: pruning failures are ignored —
// stale files only cost space.
func (l *Log) prune(latest uint64) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			l.fs.Remove(filepath.Join(l.dir, name))
			continue
		}
		if seq, ok := parseCheckpointName(name); ok && seq != latest {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for i, seq := range seqs {
		if i >= l.keep-1 { // latest plus keep-1 older ones survive
			l.fs.Remove(filepath.Join(l.dir, checkpointName(seq)))
		}
	}
}

// LatestCheckpoint loads the newest checkpoint that validates
// (framing and CRC intact). Invalid or unreadable newer checkpoints are
// skipped in favor of older ones. ok is false when no valid checkpoint
// exists.
func (l *Log) LatestCheckpoint() (seq uint64, state []byte, ok bool, err error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return 0, nil, false, nil // directory may not exist yet
	}
	var seqs []uint64
	for _, name := range names {
		if s, isCk := parseCheckpointName(name); isCk {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		data, rerr := l.readCheckpoint(s)
		if rerr != nil {
			continue // corrupt or torn: fall back to the previous one
		}
		return s, data, true, nil
	}
	return 0, nil, false, nil
}

func (l *Log) readCheckpoint(seq uint64) ([]byte, error) {
	rc, err := l.fs.Open(filepath.Join(l.dir, checkpointName(seq)))
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("wal: checkpoint too short")
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if int(n) != len(data)-headerSize {
		return nil, fmt.Errorf("wal: checkpoint length mismatch")
	}
	body := data[8:]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	if got := binary.LittleEndian.Uint64(body); got != seq {
		return nil, fmt.Errorf("wal: checkpoint seq %d under name %d", got, seq)
	}
	return body[8:], nil
}

// Close releases the journal handle. It does not checkpoint; callers
// that want a replay-free restart checkpoint first.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
