package links

// Frozen is an immutable, persistent set of links with structural
// sharing: each value holds a pointer to its parent plus a small delta
// of links added relative to it. Extending a Frozen with With is
// O(delta) and never copies the ancestry, which makes it the right
// provenance carrier for the federated evaluator: a query producing R
// intermediate rows over provenance chains of average length L costs
// O(R) pointers instead of the O(R·L) of cloning a mutable Set per row.
// The chain is materialized into a Set only when a row is emitted.
//
// A nil *Frozen is the empty set, and every method is safe on a nil
// receiver. Frozen values are never mutated after construction, so they
// may be shared freely across goroutines without synchronization.
//
// Construct Frozen values only through NewFrozen and With; both
// guarantee that the links along a chain are pairwise distinct, which
// Len relies on.
type Frozen struct {
	parent *Frozen
	delta  []Link
}

// NewFrozen returns a frozen set holding the given links.
func NewFrozen(ls ...Link) *Frozen {
	return (*Frozen)(nil).With(ls...)
}

// With returns a frozen set that additionally contains ls. The receiver
// is unchanged. When every link in ls is already present the receiver
// itself is returned, so no-op extensions are free.
func (f *Frozen) With(ls ...Link) *Frozen {
	var add []Link
	for _, l := range ls {
		if !f.Has(l) && !linkIn(add, l) {
			add = append(add, l)
		}
	}
	if len(add) == 0 {
		return f
	}
	return &Frozen{parent: f, delta: add}
}

func linkIn(ls []Link, l Link) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Has reports membership by walking the delta chain. Chains are short
// (one node per sameAs hop of one answer row), so the walk is cheap.
func (f *Frozen) Has(l Link) bool {
	for n := f; n != nil; n = n.parent {
		for _, d := range n.delta {
			if d == l {
				return true
			}
		}
	}
	return false
}

// Len returns the number of distinct links in the set.
func (f *Frozen) Len() int {
	n := 0
	for node := f; node != nil; node = node.parent {
		n += len(node.delta)
	}
	return n
}

// Empty reports whether the set holds no links.
func (f *Frozen) Empty() bool { return f.Len() == 0 }

// Set materializes the frozen set as a freshly allocated mutable Set.
// The result is owned by the caller.
func (f *Frozen) Set() Set {
	out := make(Set, f.Len())
	for node := f; node != nil; node = node.parent {
		for _, l := range node.delta {
			out[l] = struct{}{}
		}
	}
	return out
}
