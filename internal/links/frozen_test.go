package links

import (
	"fmt"
	"testing"

	"alex/internal/rdf"
)

func frozenLink(i int) Link {
	return Link{
		E1: rdf.ID(2*i + 1),
		E2: rdf.ID(2*i + 2),
	}
}

func TestFrozenNilIsEmpty(t *testing.T) {
	var f *Frozen
	if f.Len() != 0 {
		t.Fatalf("nil Frozen Len = %d, want 0", f.Len())
	}
	if !f.Empty() {
		t.Fatal("nil Frozen should be Empty")
	}
	if f.Has(frozenLink(0)) {
		t.Fatal("nil Frozen should contain nothing")
	}
	if s := f.Set(); len(s) != 0 {
		t.Fatalf("nil Frozen Set() = %v, want empty", s)
	}
}

func TestFrozenWithAndHas(t *testing.T) {
	a, b, c := frozenLink(0), frozenLink(1), frozenLink(2)
	f := NewFrozen(a)
	g := f.With(b)
	h := g.With(c)

	// Each generation sees its own links plus its ancestors'.
	if !f.Has(a) || f.Has(b) || f.Has(c) {
		t.Fatalf("f membership wrong: %v %v %v", f.Has(a), f.Has(b), f.Has(c))
	}
	if !g.Has(a) || !g.Has(b) || g.Has(c) {
		t.Fatalf("g membership wrong")
	}
	if !h.Has(a) || !h.Has(b) || !h.Has(c) {
		t.Fatalf("h membership wrong")
	}
	if f.Len() != 1 || g.Len() != 2 || h.Len() != 3 {
		t.Fatalf("lens = %d %d %d, want 1 2 3", f.Len(), g.Len(), h.Len())
	}
}

func TestFrozenWithIsPersistent(t *testing.T) {
	a, b := frozenLink(0), frozenLink(1)
	f := NewFrozen(a)
	_ = f.With(b)
	// Extending must not mutate the receiver.
	if f.Has(b) {
		t.Fatal("With mutated its receiver")
	}
	if f.Len() != 1 {
		t.Fatalf("receiver Len changed to %d", f.Len())
	}
}

func TestFrozenWithDedup(t *testing.T) {
	a, b := frozenLink(0), frozenLink(1)
	f := NewFrozen(a, b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}

	// Adding only already-present links returns the receiver itself.
	if g := f.With(a); g != f {
		t.Fatal("With(existing) should return the receiver")
	}
	if g := f.With(); g != f {
		t.Fatal("With() should return the receiver")
	}

	// Duplicates within one call collapse.
	h := f.With(frozenLink(2), frozenLink(2), a)
	if h.Len() != 3 {
		t.Fatalf("Len after dup add = %d, want 3", h.Len())
	}
}

func TestFrozenSetMaterialization(t *testing.T) {
	a, b, c := frozenLink(0), frozenLink(1), frozenLink(2)
	f := NewFrozen(a).With(b).With(c, a)

	s := f.Set()
	want := Set{a: {}, b: {}, c: {}}
	if len(s) != len(want) {
		t.Fatalf("Set() = %v, want %v", s, want)
	}
	for l := range want {
		if !s.Has(l) {
			t.Fatalf("Set() missing %v", l)
		}
	}

	// The materialized set is caller-owned: mutating it must not leak
	// back into the frozen chain or other materializations.
	s.Add(frozenLink(9))
	if f.Has(frozenLink(9)) {
		t.Fatal("mutating materialized Set affected the Frozen")
	}
	if f.Set().Has(frozenLink(9)) {
		t.Fatal("materializations share state")
	}
}

func TestFrozenSharedAncestry(t *testing.T) {
	base := NewFrozen(frozenLink(0))
	left := base.With(frozenLink(1))
	right := base.With(frozenLink(2))

	if left.Has(frozenLink(2)) || right.Has(frozenLink(1)) {
		t.Fatal("siblings leaked into each other")
	}
	if !left.Has(frozenLink(0)) || !right.Has(frozenLink(0)) {
		t.Fatal("siblings lost shared ancestor")
	}
}

func TestFrozenLongChain(t *testing.T) {
	var f *Frozen
	const n = 1000
	for i := 0; i < n; i++ {
		f = f.With(frozenLink(i))
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	s := f.Set()
	if len(s) != n {
		t.Fatalf("materialized %d links, want %d", len(s), n)
	}
	for i := 0; i < n; i++ {
		if !s.Has(frozenLink(i)) {
			t.Fatalf("missing link %d", i)
		}
	}
}

func ExampleFrozen() {
	a := Link{E1: 1, E2: 2}
	b := Link{E1: 3, E2: 4}
	f := NewFrozen(a)
	g := f.With(b)
	fmt.Println(f.Len(), g.Len(), g.Has(a))
	// Output: 1 2 true
}
