package links

import (
	"testing"
	"testing/quick"

	"alex/internal/rdf"
)

func l(a, b uint32) Link { return Link{E1: rdf.ID(a), E2: rdf.ID(b)} }

func TestSetAddRemoveHas(t *testing.T) {
	s := NewSet()
	if !s.Add(l(1, 2)) {
		t.Fatal("Add of absent link returned false")
	}
	if s.Add(l(1, 2)) {
		t.Fatal("Add of present link returned true")
	}
	if !s.Has(l(1, 2)) || s.Has(l(2, 1)) {
		t.Fatal("Has wrong")
	}
	if !s.Remove(l(1, 2)) || s.Remove(l(1, 2)) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestSetSliceDeterministic(t *testing.T) {
	s := NewSet(l(3, 1), l(1, 2), l(1, 1), l(2, 9))
	got := s.Slice()
	want := []Link{l(1, 1), l(1, 2), l(2, 9), l(3, 1)}
	if len(got) != len(want) {
		t.Fatalf("Slice len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntersectionAndSymmetricDiff(t *testing.T) {
	a := NewSet(l(1, 1), l(2, 2), l(3, 3))
	b := NewSet(l(2, 2), l(3, 3), l(4, 4), l(5, 5))
	if got := a.Intersection(b); got != 2 {
		t.Fatalf("Intersection = %d, want 2", got)
	}
	if got := b.Intersection(a); got != 2 {
		t.Fatal("Intersection not symmetric")
	}
	if got := a.SymmetricDiff(b); got != 3 {
		t.Fatalf("SymmetricDiff = %d, want 3", got)
	}
	if got := a.SymmetricDiff(a); got != 0 {
		t.Fatalf("SymmetricDiff(self) = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	a := NewSet(l(1, 1))
	b := a.Clone()
	b.Add(l(2, 2))
	if a.Has(l(2, 2)) {
		t.Fatal("Clone shares storage")
	}
}

// Property: |AΔB| = |A| + |B| − 2|A∩B| and is a metric-like symmetric value.
func TestSymmetricDiffProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewSet(), NewSet()
		for _, x := range xs {
			a.Add(l(uint32(x%50), uint32(x/50%50)))
		}
		for _, y := range ys {
			b.Add(l(uint32(y%50), uint32(y/50%50)))
		}
		d1, d2 := a.SymmetricDiff(b), b.SymmetricDiff(a)
		if d1 != d2 {
			return false
		}
		manual := 0
		for x := range a {
			if !b.Has(x) {
				manual++
			}
		}
		for y := range b {
			if !a.Has(y) {
				manual++
			}
		}
		return d1 == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
