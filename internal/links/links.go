// Package links defines the link primitives shared by the linker, the
// feature space, the federation layer and the ALEX core: an owl:sameAs
// link is an ordered pair of entity IDs, the first from dataset 1 and the
// second from dataset 2.
package links

import (
	"sort"

	"alex/internal/rdf"
)

// Link is a candidate owl:sameAs edge between an entity of dataset 1 and
// an entity of dataset 2. IDs are dictionary IDs of a dictionary shared
// by both datasets.
type Link struct {
	E1, E2 rdf.ID
}

// Scored is a link with a confidence score in [0, 1], as produced by an
// automatic linking algorithm.
type Scored struct {
	Link
	Score float64
}

// Set is a mutable set of links.
type Set map[Link]struct{}

// NewSet returns a set holding the given links.
func NewSet(ls ...Link) Set {
	s := make(Set, len(ls))
	for _, l := range ls {
		s[l] = struct{}{}
	}
	return s
}

// Add inserts l and reports whether it was absent.
func (s Set) Add(l Link) bool {
	if _, ok := s[l]; ok {
		return false
	}
	s[l] = struct{}{}
	return true
}

// Remove deletes l and reports whether it was present.
func (s Set) Remove(l Link) bool {
	if _, ok := s[l]; !ok {
		return false
	}
	delete(s, l)
	return true
}

// Has reports membership.
func (s Set) Has(l Link) bool {
	_, ok := s[l]
	return ok
}

// Len returns the set size.
func (s Set) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for l := range s {
		out[l] = struct{}{}
	}
	return out
}

// Slice returns the links in deterministic (E1, E2) order.
func (s Set) Slice() []Link {
	out := make([]Link, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E1 != out[j].E1 {
			return out[i].E1 < out[j].E1
		}
		return out[i].E2 < out[j].E2
	})
	return out
}

// Intersection returns |s ∩ other|.
func (s Set) Intersection(other Set) int {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for l := range small {
		if large.Has(l) {
			n++
		}
	}
	return n
}

// SymmetricDiff returns |s Δ other|, the number of links present in
// exactly one of the two sets. ALEX's convergence test is built on this.
func (s Set) SymmetricDiff(other Set) int {
	inter := s.Intersection(other)
	return len(s) + len(other) - 2*inter
}
