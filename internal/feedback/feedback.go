// Package feedback simulates the users of the paper's evaluation
// (§7.1, "Generating Feedback"): a link drawn from the candidate set is
// compared against the ground truth, yielding a positive or negative
// feedback item. An optional error rate flips feedback randomly to model
// incorrect users (Appendix C).
package feedback

import (
	"math/rand"

	"alex/internal/links"
)

// Judger is anything that can give approve/reject verdicts on links:
// the single-user Oracle, the majority-vote Crowd, or a real feedback
// channel.
type Judger interface {
	Judge(l links.Link) bool
}

// Oracle answers approve/reject for candidate links.
type Oracle struct {
	gt      links.Set
	errRate float64
	rng     *rand.Rand
}

// NewOracle returns an oracle over the given ground truth. errRate in
// [0, 1] is the probability that a feedback item is flipped (0 for the
// paper's main experiments, 0.10 for Appendix C).
func NewOracle(gt links.Set, errRate float64, rng *rand.Rand) *Oracle {
	return &Oracle{gt: gt, errRate: errRate, rng: rng}
}

// Judge returns the user's verdict for a link: whether the answer built
// on it is approved.
func (o *Oracle) Judge(l links.Link) bool {
	correct := o.gt.Has(l)
	if o.errRate > 0 && o.rng.Float64() < o.errRate {
		return !correct
	}
	return correct
}

// GroundTruth returns the oracle's ground-truth set.
func (o *Oracle) GroundTruth() links.Set { return o.gt }

// Crowd simulates the feedback-refinement idea the paper points to in
// §6.3 ("refine the feedback so that ALEX uses only high quality
// feedback obtained from a large number of users"): each judgment is
// the majority vote of Voters independent users, every one of whom errs
// with probability ErrRate. Majority voting drives the effective error
// rate down exponentially in the number of voters.
type Crowd struct {
	gt      links.Set
	errRate float64
	voters  int
	rng     *rand.Rand
}

// NewCrowd returns a majority-vote crowd of the given size (rounded up
// to an odd number so votes cannot tie).
func NewCrowd(gt links.Set, errRate float64, voters int, rng *rand.Rand) *Crowd {
	if voters < 1 {
		voters = 1
	}
	if voters%2 == 0 {
		voters++
	}
	return &Crowd{gt: gt, errRate: errRate, voters: voters, rng: rng}
}

// Judge returns the crowd's majority verdict for a link.
func (c *Crowd) Judge(l links.Link) bool {
	correct := c.gt.Has(l)
	approvals := 0
	for i := 0; i < c.voters; i++ {
		vote := correct
		if c.errRate > 0 && c.rng.Float64() < c.errRate {
			vote = !vote
		}
		if vote {
			approvals++
		}
	}
	return approvals*2 > c.voters
}

// AsOracle adapts the crowd to the Oracle-shaped Judge API used by the
// episode drivers: it returns an Oracle whose effective error rate is
// the crowd's majority-vote error.
//
// Deprecated shim note: core's drivers take *Oracle; Crowd exposes the
// same Judge method for callers that accept an interface.
func (c *Crowd) EffectiveErrRate() float64 {
	// P(majority wrong) for n voters each wrong with probability p:
	// sum over k > n/2 of C(n,k) p^k (1-p)^(n-k).
	n := c.voters
	p := c.errRate
	total := 0.0
	for k := n/2 + 1; k <= n; k++ {
		total += binom(n, k) * pow(p, k) * pow(1-p, n-k)
	}
	return total
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
