package feedback

import (
	"math/rand"
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
)

func l(a, b uint32) links.Link { return links.Link{E1: rdf.ID(a), E2: rdf.ID(b)} }

func TestJudgePerfectOracle(t *testing.T) {
	gt := links.NewSet(l(1, 1), l(2, 2))
	o := NewOracle(gt, 0, rand.New(rand.NewSource(1)))
	if !o.Judge(l(1, 1)) {
		t.Fatal("correct link rejected")
	}
	if o.Judge(l(9, 9)) {
		t.Fatal("wrong link approved")
	}
	if o.GroundTruth().Len() != 2 {
		t.Fatal("GroundTruth accessor wrong")
	}
}

func TestJudgeErrorRateApproximatelyHolds(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	o := NewOracle(gt, 0.25, rand.New(rand.NewSource(7)))
	flips := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if !o.Judge(l(1, 1)) {
			flips++
		}
	}
	rate := float64(flips) / trials
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("flip rate = %.3f, want ≈ 0.25", rate)
	}
}

func TestJudgeErrorFlipsBothDirections(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	o := NewOracle(gt, 1.0, rand.New(rand.NewSource(7)))
	if o.Judge(l(1, 1)) {
		t.Fatal("error rate 1.0 did not flip a correct link")
	}
	if !o.Judge(l(9, 9)) {
		t.Fatal("error rate 1.0 did not flip a wrong link")
	}
}

func TestCrowdMajorityVote(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	crowd := NewCrowd(gt, 0.3, 9, rand.New(rand.NewSource(3)))
	wrongVerdicts := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if !crowd.Judge(l(1, 1)) {
			wrongVerdicts++
		}
	}
	rate := float64(wrongVerdicts) / trials
	want := crowd.EffectiveErrRate()
	if rate > want*1.5+0.01 {
		t.Fatalf("crowd error rate = %.4f, analytic = %.4f", rate, want)
	}
	// 9 voters at 30% individual error → ~10x reduction.
	if want > 0.11 {
		t.Fatalf("analytic crowd error = %.4f, want < 0.11", want)
	}
}

func TestCrowdVoterCountNormalization(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	c := NewCrowd(gt, 0.1, 4, rand.New(rand.NewSource(1)))
	if c.voters != 5 {
		t.Fatalf("voters = %d, want rounded up to 5", c.voters)
	}
	c = NewCrowd(gt, 0.1, 0, rand.New(rand.NewSource(1)))
	if c.voters != 1 {
		t.Fatalf("voters = %d, want 1", c.voters)
	}
}

func TestCrowdPerfectVoters(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	c := NewCrowd(gt, 0, 5, rand.New(rand.NewSource(1)))
	if !c.Judge(l(1, 1)) || c.Judge(l(2, 2)) {
		t.Fatal("perfect crowd misjudged")
	}
	if c.EffectiveErrRate() != 0 {
		t.Fatalf("effective error = %f", c.EffectiveErrRate())
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10}, {4, 2, 6}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %f, want %f", c.n, c.k, got, c.want)
		}
	}
}

func TestJudgeDeterministicUnderSeed(t *testing.T) {
	gt := links.NewSet(l(1, 1))
	run := func() []bool {
		o := NewOracle(gt, 0.5, rand.New(rand.NewSource(42)))
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, o.Judge(l(1, 1)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical seeds", i)
		}
	}
}
