// Package rl implements the first-visit Monte Carlo control algorithm
// with an ε-greedy policy that ALEX uses to learn which feature to
// explore around (paper §4.4, Algorithm 1).
//
// The controller is generic over state and action types: in ALEX, a
// state is a link and an action is a feature key, but the algorithm is
// independent of that.
package rl

import "math/rand"

type returns struct {
	sum float64
	n   int
}

func (r returns) avg() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Controller is a first-visit Monte Carlo controller with an ε-greedy
// policy. It is not safe for concurrent use; ALEX gives each partition
// its own controller.
type Controller[S comparable, A comparable] struct {
	epsilon float64
	rng     *rand.Rand

	q      map[S]map[A]returns // Returns(s,a) running averages
	order  map[S][]A           // actions per state in first-seen order, for deterministic argmax
	policy map[S]A             // greedy action per state after improvement

	visited map[S]bool     // first-visit bookkeeping for the current episode
	episode map[S]struct{} // states encountered in the current episode
}

// New returns a controller with exploration rate epsilon, drawing
// randomness from rng.
func New[S comparable, A comparable](epsilon float64, rng *rand.Rand) *Controller[S, A] {
	return &Controller[S, A]{
		epsilon: epsilon,
		rng:     rng,
		q:       make(map[S]map[A]returns),
		order:   make(map[S][]A),
		policy:  make(map[S]A),
		visited: make(map[S]bool),
		episode: make(map[S]struct{}),
	}
}

// Epsilon returns the exploration rate.
func (c *Controller[S, A]) Epsilon() float64 { return c.epsilon }

// SetEpsilon adjusts the exploration rate; ALEX uses it to anneal ε
// between episodes when epsilon decay is configured.
func (c *Controller[S, A]) SetEpsilon(eps float64) {
	if eps < 0 {
		eps = 0
	}
	if eps > 1 {
		eps = 1
	}
	c.epsilon = eps
}

// Visit marks state s as visited in the current episode and reports
// whether this was the first visit. Per the first-visit MC rule
// (Algorithm 1 line 13), only feedback from a state's first visit in an
// episode contributes to the returns of the state-action pairs that led
// to it; if Visit returns false the caller must not record returns for
// this feedback item.
func (c *Controller[S, A]) Visit(s S) bool {
	if c.visited[s] {
		return false
	}
	c.visited[s] = true
	return true
}

// ChooseAction picks an action for state s from the available set using
// the current ε-greedy policy: the greedy action with probability 1−ε,
// otherwise a uniformly random action (so π(s,a) ≥ ε/|A(s)| > 0 and
// exploration never stops, §4.4.1). Before the first policy improvement
// involving s the choice is uniformly random (Algorithm 1 lines 2-8,
// "arbitrary action"). ChooseAction returns the zero action and false
// when no actions are available.
func (c *Controller[S, A]) ChooseAction(s S, available []A) (A, bool) {
	var zero A
	if len(available) == 0 {
		return zero, false
	}
	c.episode[s] = struct{}{}
	if g, ok := c.policy[s]; ok && c.rng.Float64() >= c.epsilon {
		for _, a := range available {
			if a == g {
				return g, true
			}
		}
	}
	return available[c.rng.Intn(len(available))], true
}

// RecordReturn appends a reward to Returns(s, a) (Algorithm 1 line 14:
// "append feedback value to all Returns(s,a) that led to s′"; the caller
// walks the generation chain and calls RecordReturn once per pair).
// Q(s, a) is maintained as the running average of Returns (line 16).
func (c *Controller[S, A]) RecordReturn(s S, a A, reward float64) {
	c.episode[s] = struct{}{}
	m := c.q[s]
	if m == nil {
		m = make(map[A]returns)
		c.q[s] = m
	}
	if _, seen := m[a]; !seen {
		c.order[s] = append(c.order[s], a)
	}
	r := m[a]
	r.sum += reward
	r.n++
	m[a] = r
}

// Q returns the current action-value estimate for (s, a).
func (c *Controller[S, A]) Q(s S, a A) float64 { return c.q[s][a].avg() }

// GreedyAction returns the greedy action recorded by the last policy
// improvement for s, if any.
func (c *Controller[S, A]) GreedyAction(s S) (A, bool) {
	a, ok := c.policy[s]
	return a, ok
}

// EndEpisode performs policy improvement for every state visited during
// the episode (Algorithm 1 lines 24-33): the greedy action
// a* = argmax_a Q(s, a) gets probability 1−ε, implemented by recording
// a* as the policy action and letting ChooseAction add the ε exploration
// mass. It then resets the per-episode first-visit bookkeeping. Ties
// break toward the first-seen action so runs are reproducible.
func (c *Controller[S, A]) EndEpisode() {
	for s := range c.episode {
		m := c.q[s]
		if len(m) == 0 {
			continue
		}
		var best A
		bestVal := 0.0
		first := true
		for _, a := range c.order[s] {
			v := m[a].avg()
			if first || v > bestVal {
				best, bestVal, first = a, v, false
			}
		}
		c.policy[s] = best
	}
	c.visited = make(map[S]bool)
	c.episode = make(map[S]struct{})
}

// States returns the number of states with value estimates.
func (c *Controller[S, A]) States() int { return len(c.q) }
