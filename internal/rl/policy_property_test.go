package rl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEpsilonGreedyDistribution verifies the §4.4.1 guarantee
// π(s,a) ≥ ε/|A(s)| > 0: every action keeps non-zero probability after
// policy improvement, and the greedy action receives the largest share.
func TestEpsilonGreedyDistribution(t *testing.T) {
	const eps = 0.3
	c := New[int, int](eps, rand.New(rand.NewSource(1)))
	actions := []int{0, 1, 2, 3}
	// Make action 2 clearly the best.
	for _, a := range actions {
		reward := -1.0
		if a == 2 {
			reward = 1.0
		}
		c.RecordReturn(1, a, reward)
	}
	c.EndEpisode()

	const trials = 40000
	counts := map[int]int{}
	for i := 0; i < trials; i++ {
		a, _ := c.ChooseAction(1, actions)
		counts[a]++
	}
	// Expected: greedy with prob (1-ε) + ε/|A| = 0.775; others ε/|A| = 0.075.
	greedyFrac := float64(counts[2]) / trials
	if greedyFrac < 0.74 || greedyFrac > 0.81 {
		t.Errorf("greedy fraction = %.3f, want ≈ 0.775", greedyFrac)
	}
	for _, a := range []int{0, 1, 3} {
		frac := float64(counts[a]) / trials
		if frac < 0.05 || frac > 0.10 {
			t.Errorf("non-greedy action %d fraction = %.3f, want ≈ 0.075", a, frac)
		}
	}
}

// TestPolicyImprovementProperty is the empirical counterpart of the §5
// soundness proof: on random bandit instances, the expected return of
// the improved (greedy) policy is at least that of the uniform policy
// it replaces.
func TestPolicyImprovementProperty(t *testing.T) {
	prop := func(seed int64, meansRaw [4]int8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New[int, int](0, rng) // ε=0: pure greedy after improvement
		means := make([]float64, len(meansRaw))
		for i, m := range meansRaw {
			means[i] = float64(m) / 32
		}
		actions := []int{0, 1, 2, 3}

		// Policy evaluation under the uniform (arbitrary) initial
		// policy: sample each action several times with noisy rewards.
		noise := rand.New(rand.NewSource(seed + 1))
		uniformReturn := 0.0
		samples := 0
		for round := 0; round < 12; round++ {
			a, ok := c.ChooseAction(1, actions)
			if !ok {
				return false
			}
			r := means[a] + (noise.Float64()-0.5)*0.1
			c.RecordReturn(1, a, r)
			uniformReturn += r
			samples++
		}
		uniformReturn /= float64(samples)
		c.EndEpisode()

		// The improved policy's action must have an estimated value at
		// least the average return of the evaluation phase (argmax ≥ mean).
		g, ok := c.GreedyAction(1)
		if !ok {
			return false
		}
		return c.Q(1, g) >= uniformReturn-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFirstVisitAcrossEpisodesProperty: Visit admits a state exactly
// once per episode regardless of call pattern.
func TestFirstVisitAcrossEpisodesProperty(t *testing.T) {
	prop := func(statesRaw []uint8, episodes uint8) bool {
		c := New[int, int](0.1, rand.New(rand.NewSource(5)))
		eps := int(episodes%5) + 1
		for e := 0; e < eps; e++ {
			admitted := map[int]int{}
			for _, s := range statesRaw {
				if c.Visit(int(s)) {
					admitted[int(s)]++
				}
			}
			for s, n := range admitted {
				if n != 1 {
					_ = s
					return false
				}
			}
			c.EndEpisode()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
