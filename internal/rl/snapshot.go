package rl

// TableEntry is one (state, action) row of the exported action-value
// table: Sum and N reconstruct the Returns average.
type TableEntry[S comparable, A comparable] struct {
	State  S
	Action A
	Sum    float64
	N      int
}

// PolicyEntry is one state's greedy action in the exported policy.
type PolicyEntry[S comparable, A comparable] struct {
	State  S
	Action A
}

// Export dumps the learned action-value table and greedy policy. The
// per-episode first-visit bookkeeping is transient and not exported;
// snapshots are intended to be taken between episodes.
func (c *Controller[S, A]) Export() (table []TableEntry[S, A], policy []PolicyEntry[S, A]) {
	for s, actions := range c.q {
		for _, a := range c.order[s] {
			r := actions[a]
			table = append(table, TableEntry[S, A]{State: s, Action: a, Sum: r.sum, N: r.n})
		}
	}
	for s, a := range c.policy {
		policy = append(policy, PolicyEntry[S, A]{State: s, Action: a})
	}
	return table, policy
}

// Import replaces the controller's learned state with a previously
// exported table and policy. Entries are applied in slice order, which
// also fixes the deterministic tie-break order of argmax.
func (c *Controller[S, A]) Import(table []TableEntry[S, A], policy []PolicyEntry[S, A]) {
	c.q = make(map[S]map[A]returns, len(table))
	c.order = make(map[S][]A, len(table))
	c.policy = make(map[S]A, len(policy))
	c.visited = make(map[S]bool)
	c.episode = make(map[S]struct{})
	for _, e := range table {
		m := c.q[e.State]
		if m == nil {
			m = make(map[A]returns)
			c.q[e.State] = m
		}
		if _, seen := m[e.Action]; !seen {
			c.order[e.State] = append(c.order[e.State], e.Action)
		}
		m[e.Action] = returns{sum: e.Sum, n: e.N}
	}
	for _, p := range policy {
		c.policy[p.State] = p.Action
	}
}
