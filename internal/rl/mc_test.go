package rl

import (
	"math/rand"
	"testing"
)

func newTestController(eps float64) *Controller[int, string] {
	return New[int, string](eps, rand.New(rand.NewSource(42)))
}

func TestChooseActionEmpty(t *testing.T) {
	c := newTestController(0.1)
	if _, ok := c.ChooseAction(1, nil); ok {
		t.Fatal("ChooseAction with no actions returned ok")
	}
}

func TestChooseActionArbitraryBeforeLearning(t *testing.T) {
	c := newTestController(0.1)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		a, ok := c.ChooseAction(1, []string{"x", "y", "z"})
		if !ok {
			t.Fatal("no action")
		}
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("arbitrary policy did not cover all actions: %v", seen)
	}
}

func TestVisitFirstVisitSemantics(t *testing.T) {
	c := newTestController(0.1)
	if !c.Visit(100) {
		t.Fatal("first Visit returned false")
	}
	if c.Visit(100) {
		t.Fatal("second Visit in same episode returned true")
	}
	c.EndEpisode()
	if !c.Visit(100) {
		t.Fatal("Visit in a new episode is a new first visit")
	}
}

func TestReturnsAveraging(t *testing.T) {
	c := newTestController(0.1)
	c.RecordReturn(1, "x", 1)
	c.RecordReturn(1, "x", -1)
	if got := c.Q(1, "x"); got != 0 {
		t.Fatalf("Q = %f, want 0 (average of +1 and -1)", got)
	}
	c.RecordReturn(1, "x", 1)
	if got := c.Q(1, "x"); got < 0.33 || got > 0.34 {
		t.Fatalf("Q = %f, want 1/3", got)
	}
	if got := c.Q(1, "never"); got != 0 {
		t.Fatalf("Q of unseen action = %f, want 0", got)
	}
}

func TestPolicyImprovementPicksArgmax(t *testing.T) {
	c := newTestController(0) // fully greedy after improvement
	c.RecordReturn(1, "bad", -1)
	c.RecordReturn(1, "good", 1)
	c.EndEpisode()
	a, ok := c.GreedyAction(1)
	if !ok || a != "good" {
		t.Fatalf("greedy action = %q, %v; want good", a, ok)
	}
	for i := 0; i < 50; i++ {
		got, _ := c.ChooseAction(1, []string{"bad", "good"})
		if got != "good" {
			t.Fatalf("ε=0 policy chose %q", got)
		}
	}
}

func TestEpsilonGreedyStillExplores(t *testing.T) {
	c := newTestController(0.5)
	c.RecordReturn(1, "good", 1)
	c.RecordReturn(1, "bad", -1)
	c.EndEpisode()
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		a, _ := c.ChooseAction(1, []string{"bad", "good"})
		counts[a]++
	}
	if counts["bad"] == 0 {
		t.Fatal("ε-greedy never explored the non-greedy action")
	}
	if counts["good"] <= counts["bad"] {
		t.Fatalf("greedy action not preferred: %v", counts)
	}
}

func TestGreedyActionUnavailableFallsBack(t *testing.T) {
	c := newTestController(0)
	c.RecordReturn(1, "gone", 5)
	c.EndEpisode()
	a, ok := c.ChooseAction(1, []string{"other"})
	if !ok || a != "other" {
		t.Fatalf("fallback = %q, %v", a, ok)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two actions with equal Q: argmax must resolve to the first-seen
	// action, deterministically across controllers.
	for trial := 0; trial < 5; trial++ {
		c := New[int, string](0, rand.New(rand.NewSource(7)))
		c.RecordReturn(1, "first", 1)
		c.RecordReturn(1, "second", 1)
		c.EndEpisode()
		a, _ := c.GreedyAction(1)
		if a != "first" {
			t.Fatalf("tie broke to %q", a)
		}
	}
}

func TestStatesCount(t *testing.T) {
	c := newTestController(0.1)
	c.RecordReturn(1, "a", 1)
	c.RecordReturn(2, "a", 1)
	if c.States() != 2 {
		t.Fatalf("States = %d, want 2", c.States())
	}
}

// The convergence property behind §5: with ε-greedy improvement over
// repeated episodes where one action is consistently better, the policy
// settles on that action.
func TestConvergenceToBetterAction(t *testing.T) {
	c := New[int, string](0.2, rand.New(rand.NewSource(11)))
	actions := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(99))
	for ep := 0; ep < 30; ep++ {
		for step := 0; step < 20; step++ {
			s := step % 3
			act, _ := c.ChooseAction(s, actions)
			reward := -1.0
			if act == "b" {
				reward = 1.0
			}
			// noisy reward
			if rng.Float64() < 0.1 {
				reward = -reward
			}
			c.RecordReturn(s, act, reward)
		}
		c.EndEpisode()
	}
	for s := 0; s < 3; s++ {
		if a, ok := c.GreedyAction(s); !ok || a != "b" {
			t.Fatalf("state %d converged to %q", s, a)
		}
	}
}
