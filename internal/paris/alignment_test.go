package paris

import (
	"fmt"
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
)

// alignmentWorld: people matched by name, plus a coincidence — one
// person's name lexically equals a place label — which creates a false
// positive for the unaligned linker.
func alignmentWorld() *builder {
	b := newBuilder()
	// Solid name-aligned pairs establishing (label, name) alignment.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("Person Number %d", i)
		b.add1(fmt.Sprintf("p%d", i), "label", rdf.Literal(name))
		b.add2(fmt.Sprintf("q%d", i), "name", rdf.Literal(name))
	}
	// The coincidence: a ds1 person is named "Victoria" and an
	// unrelated ds2 place has hometown value "Victoria".
	b.add1("coincidence", "label", rdf.Literal("Victoria"))
	b.add2("place", "hometown", rdf.Literal("Victoria"))
	return b
}

func scoresOf(b *builder, opts Options) map[links.Link]float64 {
	opts.Threshold = 0
	opts.Greedy11 = false
	opts.Iterations = 1
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), opts)
	out := map[links.Link]float64{}
	for _, s := range got {
		out[s.Link] = s.Score
	}
	return out
}

func TestAlignmentSuppressesCrossRelationCoincidence(t *testing.T) {
	b := alignmentWorld()
	coincidence := b.link("coincidence", "place")
	good := b.link("p0", "q0")

	plain := scoresOf(b, Options{})
	aligned := scoresOf(b, Options{AlignRelations: true})

	if plain[coincidence] == 0 {
		t.Fatal("setup broken: coincidence pair carries no plain evidence")
	}
	if aligned[coincidence] >= plain[coincidence] {
		t.Fatalf("alignment did not suppress the coincidence: %.3f -> %.3f",
			plain[coincidence], aligned[coincidence])
	}
	if aligned[good] < 0.5 {
		t.Fatalf("alignment hurt a genuine pair: %.3f", aligned[good])
	}
}

func TestRelationAlignmentProbabilities(t *testing.T) {
	b := alignmentWorld()
	a := &aligner{
		g1: b.g1, g2: b.g2,
		opts: Options{Iterations: 1, MaxValueFanout: 64},
		in1:  idSet(b.g1.SubjectIDs()), in2: idSet(b.g2.SubjectIDs()),
	}
	a.prepare(b.g1.SubjectIDs(), b.g2.SubjectIDs())
	scores := a.literalEvidence()
	align := a.relationAlignment(scores)
	if align == nil {
		t.Fatal("no alignment computed")
	}
	label, _ := b.d.Lookup(rdf.IRI("http://ds1/label"))
	name, _ := b.d.Lookup(rdf.IRI("http://ds2/name"))
	hometown, _ := b.d.Lookup(rdf.IRI("http://ds2/hometown"))
	ln := align[relPair{r1: label, r2: name}]
	lh := align[relPair{r1: label, r2: hometown}]
	if ln <= lh {
		t.Fatalf("align(label,name)=%.3f should exceed align(label,hometown)=%.3f", ln, lh)
	}
	if ln < 0.7 {
		t.Fatalf("align(label,name)=%.3f, want high", ln)
	}
}

func TestRelationAlignmentEmptyWhenNoMatches(t *testing.T) {
	b := newBuilder()
	b.add1("x", "p", rdf.Literal("only-in-ds1"))
	b.add2("y", "q", rdf.Literal("only-in-ds2"))
	a := &aligner{
		g1: b.g1, g2: b.g2,
		opts: Options{Iterations: 1, MaxValueFanout: 64},
		in1:  idSet(b.g1.SubjectIDs()), in2: idSet(b.g2.SubjectIDs()),
	}
	a.prepare(b.g1.SubjectIDs(), b.g2.SubjectIDs())
	if align := a.relationAlignment(a.literalEvidence()); align != nil {
		t.Fatalf("alignment from zero matches: %v", align)
	}
}
