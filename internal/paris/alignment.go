package paris

import (
	"alex/internal/links"
	"alex/internal/rdf"
)

// relPair is an ordered (dataset-1 relation, dataset-2 relation) pair.
type relPair struct {
	r1, r2 rdf.ID
}

// relationAlignment estimates P(r1 ≈ r2) from the current entity
// matches, the schema-alignment idea of PARIS: for matched entity pairs
// (x, y) with score ≥ 0.5, a relation pair is supported when x's r1
// value coincides with y's r2 value. The alignment score is
// support / occurrences, where occurrences counts matched pairs in
// which x has relation r1 at all — a conditional-probability estimate
// of "if x≡y and x has (r1, v), does y state the same fact through r2".
func (a *aligner) relationAlignment(scores map[links.Link]float64) map[relPair]float64 {
	support := map[relPair]int{}
	occur := map[rdf.ID]int{} // matched-pair count per r1
	pairs := 0
	for l, s := range scores {
		if s < 0.5 {
			continue
		}
		pairs++
		attrs1 := a.ent1[l.E1]
		attrs2 := a.ent2[l.E2]
		vals2 := map[rdf.ID][]rdf.ID{} // object → ds2 predicates stating it
		for _, at := range attrs2 {
			vals2[at.Obj] = append(vals2[at.Obj], at.Pred)
		}
		seenR1 := map[rdf.ID]bool{}
		seenPair := map[relPair]bool{}
		for _, at := range attrs1 {
			if !seenR1[at.Pred] {
				seenR1[at.Pred] = true
				occur[at.Pred]++
			}
			for _, r2 := range vals2[at.Obj] {
				rp := relPair{r1: at.Pred, r2: r2}
				if !seenPair[rp] {
					seenPair[rp] = true
					support[rp]++
				}
			}
		}
	}
	if pairs == 0 {
		return nil
	}
	align := make(map[relPair]float64, len(support))
	for rp, sup := range support {
		if n := occur[rp.r1]; n > 0 {
			align[rp] = float64(sup) / float64(n)
		}
	}
	return align
}

// literalEvidenceAligned recomputes the shared-value evidence with each
// relation pair's contribution weighted by its alignment probability,
// suppressing coincidental value sharing between semantically unrelated
// relations (e.g. a person's name equal to some place's label).
func (a *aligner) literalEvidenceAligned(align map[relPair]float64) map[links.Link]float64 {
	disbelief := map[links.Link]float64{}
	for obj, inc1 := range a.byObj1 {
		inc2, ok := a.byObj2[obj]
		if !ok {
			continue
		}
		if len(inc1) > a.opts.MaxValueFanout || len(inc2) > a.opts.MaxValueFanout {
			continue
		}
		for _, x := range inc1 {
			for _, y := range inc2 {
				w := a.ifun1[x.pred] * a.ifun2[y.pred] * align[relPair{r1: x.pred, r2: y.pred}]
				if w <= 0 {
					continue
				}
				l := links.Link{E1: x.subj, E2: y.subj}
				d, seen := disbelief[l]
				if !seen {
					d = 1
				}
				disbelief[l] = d * (1 - w)
			}
		}
	}
	scores := make(map[links.Link]float64, len(disbelief))
	for l, d := range disbelief {
		scores[l] = 1 - d
	}
	return scores
}
