package paris

import (
	"fmt"
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
)

type builder struct {
	d      *rdf.Dict
	g1, g2 *rdf.Graph
}

func newBuilder() *builder {
	d := rdf.NewDict()
	return &builder{d: d, g1: rdf.NewGraphWithDict(d), g2: rdf.NewGraphWithDict(d)}
}

func (b *builder) add1(s, p string, o rdf.Term) {
	b.g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/" + s), P: rdf.IRI("http://ds1/" + p), O: o})
}

func (b *builder) add2(s, p string, o rdf.Term) {
	b.g2.Insert(rdf.Triple{S: rdf.IRI("http://ds2/" + s), P: rdf.IRI("http://ds2/" + p), O: o})
}

func (b *builder) id(iri string) rdf.ID {
	v, ok := b.d.Lookup(rdf.IRI(iri))
	if !ok {
		panic("missing " + iri)
	}
	return v
}

func (b *builder) link(s1, s2 string) links.Link {
	return links.Link{E1: b.id("http://ds1/" + s1), E2: b.id("http://ds2/" + s2)}
}

func TestLinkExactMatches(t *testing.T) {
	b := newBuilder()
	// Three entities with distinctive names on both sides.
	for i, name := range []string{"Alpha One", "Beta Two", "Gamma Three"} {
		s := fmt.Sprintf("e%d", i)
		b.add1(s, "label", rdf.Literal(name))
		b.add1(s, "year", rdf.Literal(fmt.Sprintf("19%d0", i+5)))
		b.add2(s, "name", rdf.Literal(name))
		b.add2(s, "born", rdf.Literal(fmt.Sprintf("19%d0", i+5)))
	}
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), NewOptions())
	if len(got) != 3 {
		t.Fatalf("links = %d, want 3", len(got))
	}
	want := links.NewSet(b.link("e0", "e0"), b.link("e1", "e1"), b.link("e2", "e2"))
	for _, l := range got {
		if !want.Has(l.Link) {
			t.Errorf("unexpected link %+v", l)
		}
		if l.Score < 0.95 {
			t.Errorf("score = %f, want ≥ 0.95", l.Score)
		}
	}
}

func TestLinkIgnoresNonDistinctiveValues(t *testing.T) {
	b := newBuilder()
	// Every entity shares the same type value; only e0 pairs share a
	// distinctive name. The common value must not link everything.
	for i := 0; i < 10; i++ {
		s := fmt.Sprintf("e%d", i)
		b.add1(s, "type", rdf.Literal("Thing"))
		b.add2(s, "type", rdf.Literal("Thing"))
		b.add1(s, "label", rdf.Literal(fmt.Sprintf("distinct-one-%d", i)))
		if i == 0 {
			b.add2(s, "name", rdf.Literal("distinct-one-0"))
		} else {
			b.add2(s, "name", rdf.Literal(fmt.Sprintf("unrelated-%d", i)))
		}
	}
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), NewOptions())
	if len(got) != 1 {
		t.Fatalf("links = %v, want only the (e0,e0) pair", got)
	}
	if got[0].Link != b.link("e0", "e0") {
		t.Fatalf("linked %+v", got[0])
	}
}

func TestLinkHomonymTrap(t *testing.T) {
	b := newBuilder()
	// ds1 e0 and ds2 x share an exact name, but so does the unrelated
	// ds2 homonym entity: PARIS confidently links one of them (greedy
	// 1:1 keeps a single link). This is the low-precision regime.
	b.add1("e0", "label", rdf.Literal("John Smith"))
	b.add2("x", "name", rdf.Literal("John Smith"))
	b.add2("homonym", "name", rdf.Literal("John Smith"))
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), Options{Threshold: 0.3, Iterations: 1, Greedy11: true})
	if len(got) != 1 {
		t.Fatalf("links = %d, want 1 after 1:1 reduction", len(got))
	}
}

func TestLinkPropagationThroughEntities(t *testing.T) {
	b := newBuilder()
	// Players link by name; the teams share no literal but are linked
	// through their players after propagation... the team pair needs
	// direct literal evidence to enter the pool first, so give them a
	// weakly shared city value and verify propagation raises the score.
	b.add1("p1", "label", rdf.Literal("LeBron James"))
	b.add2("q1", "name", rdf.Literal("LeBron James"))
	b.add1("t1", "city", rdf.Literal("Cleveland"))
	b.add2("u1", "city", rdf.Literal("Cleveland"))
	// more city values sharing lexical forms so ifun(city) < 1 and the
	// literal evidence alone stays below certainty
	b.add1("t2", "city", rdf.Literal("Boston"))
	b.add2("u2", "city", rdf.Literal("Boston"))
	b.add1("t3", "city", rdf.Literal("Cleveland"))
	b.add2("u3", "city", rdf.Literal("Cleveland"))
	// membership edges (entity-valued)
	b.add1("t1", "hasPlayer", rdf.IRI("http://ds1/p1"))
	b.add2("u1", "hasPlayer", rdf.IRI("http://ds2/q1"))

	one := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), Options{Threshold: 0, Iterations: 1, Greedy11: false})
	three := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), Options{Threshold: 0, Iterations: 3, Greedy11: false})
	score := func(ls []links.Scored, l links.Link) float64 {
		for _, s := range ls {
			if s.Link == l {
				return s.Score
			}
		}
		return -1
	}
	team := b.link("t1", "u1")
	s1, s3 := score(one, team), score(three, team)
	if s1 < 0 || s3 < 0 {
		t.Fatalf("team pair missing: %f %f", s1, s3)
	}
	if s3 <= s1 {
		t.Fatalf("propagation did not raise team score: %f -> %f", s1, s3)
	}
}

func TestLinkThresholdFilters(t *testing.T) {
	b := newBuilder()
	// A weak shared value (low ifun) should stay below 0.95.
	for i := 0; i < 5; i++ {
		b.add1(fmt.Sprintf("e%d", i), "country", rdf.Literal("USA"))
		b.add2(fmt.Sprintf("f%d", i), "country", rdf.Literal("USA"))
	}
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), NewOptions())
	if len(got) != 0 {
		t.Fatalf("weak evidence produced %d links at 0.95", len(got))
	}
	loose := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), Options{Threshold: 0.01, Iterations: 1, Greedy11: false})
	if len(loose) != 25 {
		t.Fatalf("loose threshold links = %d, want 25", len(loose))
	}
}

func TestGreedyOneToOne(t *testing.T) {
	in := []links.Scored{
		{Link: links.Link{E1: 1, E2: 10}, Score: 0.99},
		{Link: links.Link{E1: 1, E2: 11}, Score: 0.98},
		{Link: links.Link{E1: 2, E2: 10}, Score: 0.97},
		{Link: links.Link{E1: 2, E2: 12}, Score: 0.96},
	}
	out := greedyOneToOne(in)
	if len(out) != 2 {
		t.Fatalf("out = %d links, want 2", len(out))
	}
	if out[0].Link != (links.Link{E1: 1, E2: 10}) || out[1].Link != (links.Link{E1: 2, E2: 12}) {
		t.Fatalf("greedy picks = %+v", out)
	}
}

func TestMaxValueFanoutCapsBlowup(t *testing.T) {
	b := newBuilder()
	// 100 subjects on each side share one value: with default fanout cap
	// the value is skipped entirely and no pairs are scored.
	for i := 0; i < 100; i++ {
		b.add1(fmt.Sprintf("e%d", i), "p", rdf.Literal("shared"))
		b.add2(fmt.Sprintf("f%d", i), "p", rdf.Literal("shared"))
	}
	got := Link(b.g1, b.g2, b.g1.SubjectIDs(), b.g2.SubjectIDs(), Options{Threshold: 0, Iterations: 1, MaxValueFanout: 64, Greedy11: false})
	if len(got) != 0 {
		t.Fatalf("fanout cap failed: %d links", len(got))
	}
}
