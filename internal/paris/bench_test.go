package paris

import (
	"fmt"
	"testing"

	"alex/internal/rdf"
)

func benchWorld(n int) *builder {
	b := newBuilder()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Entity Number %d", i)
		year := fmt.Sprintf("%d", 1900+i%100)
		b.add1(fmt.Sprintf("e%d", i), "label", rdf.Literal(name))
		b.add1(fmt.Sprintf("e%d", i), "year", rdf.Literal(year))
		b.add2(fmt.Sprintf("f%d", i), "name", rdf.Literal(name))
		b.add2(fmt.Sprintf("f%d", i), "born", rdf.Literal(year))
	}
	return b
}

func BenchmarkLink(b *testing.B) {
	w := benchWorld(500)
	e1, e2 := w.g1.SubjectIDs(), w.g2.SubjectIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := Link(w.g1, w.g2, e1, e2, NewOptions())
		if len(got) != 500 {
			b.Fatalf("links=%d", len(got))
		}
	}
}

func BenchmarkLinkWithAlignment(b *testing.B) {
	w := benchWorld(500)
	e1, e2 := w.g1.SubjectIDs(), w.g2.SubjectIDs()
	opts := NewOptions()
	opts.AlignRelations = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := Link(w.g1, w.g2, e1, e2, opts)
		if len(got) == 0 {
			b.Fatal("no links")
		}
	}
}
