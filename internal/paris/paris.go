// Package paris implements a PARIS-style probabilistic automatic linker
// (Suchanek, Abiteboul, Senellart: "PARIS: Probabilistic Alignment of
// Relations, Instances, and Schema", PVLDB 2012), used as the baseline
// that produces ALEX's initial candidate links (paper §7.1).
//
// The implementation follows the core PARIS idea: two entities are
// likely equal when they share values of relations with high inverse
// functionality (relations whose value pins down the subject), and
// equality probabilities propagate through entity-valued relations over
// a small number of fixpoint iterations. Schema (relation subsumption)
// alignment is simplified away: evidence combines relation pairs
// directly through the product of their inverse functionalities.
package paris

import (
	"sort"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/store"
)

// Options configures the linker.
type Options struct {
	// Threshold is the minimum score for a link to be reported. The
	// paper uses 0.95 for links fed to ALEX.
	Threshold float64
	// Iterations is the number of fixpoint rounds propagating equality
	// through entity-valued relations (default 3).
	Iterations int
	// MaxValueFanout skips shared values appearing on more subjects
	// than this on either side, bounding the quadratic blowup caused by
	// extremely common values (default 64). Such values carry almost no
	// evidence anyway because their inverse functionality is tiny.
	MaxValueFanout int
	// Greedy11, when true (default behaviour of NewOptions), reduces
	// the scored pairs to a one-to-one matching greedily by score.
	Greedy11 bool
	// AlignRelations enables the schema-alignment stage: relation-pair
	// alignment probabilities are estimated from the first round of
	// entity matches and used to re-weight value evidence, suppressing
	// coincidental value sharing between unrelated relations. Off by
	// default to keep the baseline minimal; the experiments use the
	// default configuration.
	AlignRelations bool
}

// NewOptions returns the defaults used in the paper's experiments.
func NewOptions() Options {
	return Options{Threshold: 0.95, Iterations: 3, MaxValueFanout: 64, Greedy11: true}
}

func (o *Options) fill() {
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.MaxValueFanout <= 0 {
		o.MaxValueFanout = 64
	}
}

// Link aligns the given entities of g1 and g2 (which must share a
// dictionary) and returns scored candidate links with score ≥ Threshold,
// sorted by descending score.
func Link(g1, g2 store.TripleStore, entities1, entities2 []rdf.ID, opts Options) []links.Scored {
	opts.fill()
	a := &aligner{
		g1: g1, g2: g2, opts: opts,
		in1: idSet(entities1), in2: idSet(entities2),
	}
	a.prepare(entities1, entities2)
	scores := a.literalEvidence()
	if opts.AlignRelations {
		if align := a.relationAlignment(scores); align != nil {
			scores = a.literalEvidenceAligned(align)
		}
	}
	for i := 1; i < opts.Iterations; i++ {
		next := a.propagate(scores)
		if !changed(scores, next) {
			scores = next
			break
		}
		scores = next
	}

	out := make([]links.Scored, 0, len(scores))
	for l, s := range scores {
		if s >= opts.Threshold {
			out = append(out, links.Scored{Link: l, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].E1 != out[j].E1 {
			return out[i].E1 < out[j].E1
		}
		return out[i].E2 < out[j].E2
	})
	if opts.Greedy11 {
		out = greedyOneToOne(out)
	}
	return out
}

type predObj struct {
	pred rdf.ID
	subj rdf.ID
}

type aligner struct {
	g1, g2   store.TripleStore
	opts     Options
	in1, in2 map[rdf.ID]bool

	ifun1, ifun2 map[rdf.ID]float64
	// byObj maps an object ID to the (pred, subj) incidences among the
	// selected entities, per graph.
	byObj1, byObj2 map[rdf.ID][]predObj
	// entity-valued attributes for propagation
	ent1, ent2 map[rdf.ID][]rdf.Attribute
}

func idSet(ids []rdf.ID) map[rdf.ID]bool {
	m := make(map[rdf.ID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func (a *aligner) prepare(entities1, entities2 []rdf.ID) {
	a.ifun1, a.byObj1, a.ent1 = scanGraph(a.g1, entities1)
	a.ifun2, a.byObj2, a.ent2 = scanGraph(a.g2, entities2)
}

// scanGraph computes inverse functionalities and the object→incidence
// index restricted to the selected subjects. Inverse functionality of a
// relation r is (#distinct objects of r) / (#(s,o) pairs of r): 1 means
// a value identifies its subject uniquely.
func scanGraph(g store.TripleStore, entities []rdf.ID) (map[rdf.ID]float64, map[rdf.ID][]predObj, map[rdf.ID][]rdf.Attribute) {
	pairs := map[rdf.ID]int{}
	objs := map[rdf.ID]map[rdf.ID]struct{}{}
	byObj := map[rdf.ID][]predObj{}
	entAttrs := map[rdf.ID][]rdf.Attribute{}
	for _, s := range entities {
		for _, at := range g.Entity(s) {
			pairs[at.Pred]++
			set := objs[at.Pred]
			if set == nil {
				set = map[rdf.ID]struct{}{}
				objs[at.Pred] = set
			}
			set[at.Obj] = struct{}{}
			byObj[at.Obj] = append(byObj[at.Obj], predObj{pred: at.Pred, subj: s})
			entAttrs[s] = append(entAttrs[s], at)
		}
	}
	ifun := make(map[rdf.ID]float64, len(pairs))
	for p, n := range pairs {
		ifun[p] = float64(len(objs[p])) / float64(n)
	}
	return ifun, byObj, entAttrs
}

// literalEvidence scores entity pairs by shared object values:
// P(x≡y) = 1 − ∏ over shared values (1 − ifun1(r1)·ifun2(r2)).
func (a *aligner) literalEvidence() map[links.Link]float64 {
	disbelief := map[links.Link]float64{}
	for obj, inc1 := range a.byObj1 {
		inc2, ok := a.byObj2[obj]
		if !ok {
			continue
		}
		if len(inc1) > a.opts.MaxValueFanout || len(inc2) > a.opts.MaxValueFanout {
			continue
		}
		for _, x := range inc1 {
			for _, y := range inc2 {
				w := a.ifun1[x.pred] * a.ifun2[y.pred]
				if w <= 0 {
					continue
				}
				l := links.Link{E1: x.subj, E2: y.subj}
				d, seen := disbelief[l]
				if !seen {
					d = 1
				}
				disbelief[l] = d * (1 - w)
			}
		}
	}
	scores := make(map[links.Link]float64, len(disbelief))
	for l, d := range disbelief {
		scores[l] = 1 - d
	}
	return scores
}

// propagate adds evidence from entity-valued relations: if x has (r1,o1)
// and y has (r2,o2) with current P(o1≡o2) = p, the pair gains evidence
// ifun1(r1)·ifun2(r2)·p. One propagation round recomputes scores from
// both literal and entity evidence.
func (a *aligner) propagate(prev map[links.Link]float64) map[links.Link]float64 {
	// Index the previous matches by first endpoint for lookup.
	byE1 := map[rdf.ID][]links.Scored{}
	for l, s := range prev {
		if s >= 0.5 {
			byE1[l.E1] = append(byE1[l.E1], links.Scored{Link: l, Score: s})
		}
	}
	next := make(map[links.Link]float64, len(prev))
	for l, s := range prev {
		next[l] = s
	}
	for l := range prev {
		x, y := l.E1, l.E2
		extra := 1.0
		for _, ax := range a.ent1[x] {
			o1 := ax.Obj
			for _, m := range byE1[o1] {
				// o1 (an entity of ds1) is believed equal to m.E2
				for _, ay := range a.ent2[y] {
					if ay.Obj != m.E2 {
						continue
					}
					w := a.ifun1[ax.Pred] * a.ifun2[ay.Pred] * m.Score
					if w > 0 {
						extra *= 1 - w
					}
				}
			}
		}
		if extra < 1 {
			next[l] = 1 - (1-prev[l])*extra
		}
	}
	return next
}

func changed(a, b map[links.Link]float64) bool {
	if len(a) != len(b) {
		return true
	}
	for l, v := range a {
		if diff := b[l] - v; diff > 1e-6 || diff < -1e-6 {
			return true
		}
	}
	return false
}

// greedyOneToOne keeps the highest-scored link per entity on both sides,
// scanning in descending score order.
func greedyOneToOne(scored []links.Scored) []links.Scored {
	used1 := map[rdf.ID]bool{}
	used2 := map[rdf.ID]bool{}
	out := scored[:0]
	for _, s := range scored {
		if used1[s.E1] || used2[s.E2] {
			continue
		}
		used1[s.E1] = true
		used2[s.E2] = true
		out = append(out, s)
	}
	return out
}
