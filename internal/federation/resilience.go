// Fault tolerance of the federation read path. Decentralised Linked
// Data sources are unreliable by nature: a federated query must survive
// slow or failing endpoints instead of failing outright. Each source
// access runs under a per-source deadline with bounded, jitter-backed
// retries; repeated failures open a per-source circuit breaker, and
// while a source's circuit is open (or its access keeps failing) the
// query proceeds over the remaining sources and the result set is
// annotated with the degraded source names — partial answers with a
// marker, never an error.
package federation

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// AccessFunc is the availability hook of a source: it is invoked (under
// the per-source deadline) before the federator evaluates patterns
// against the source's data, standing in for the network round trip a
// remote endpoint would need. A nil AccessFunc marks a local in-memory
// source that cannot fail; a non-nil one that returns an error (or
// overruns the deadline) marks the source unavailable for this query.
// Fault-injection tests and future remote backends both plug in here.
type AccessFunc func(ctx context.Context) error

// Resilience tunes the fault-tolerant read path.
type Resilience struct {
	// SourceTimeout is the deadline of a single access attempt.
	SourceTimeout time.Duration
	// Retries is how many times a failed access is retried (attempts =
	// Retries + 1).
	Retries int
	// BackoffBase is the first retry delay; it doubles per retry, with
	// full jitter, capped at BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Breaker configures the per-source circuit breaker.
	Breaker BreakerConfig
}

// DefaultResilience returns production-shaped defaults.
func DefaultResilience() Resilience {
	return Resilience{
		SourceTimeout: 2 * time.Second,
		Retries:       2,
		BackoffBase:   50 * time.Millisecond,
		BackoffMax:    time.Second,
		Breaker:       BreakerConfig{}.withDefaults(),
	}
}

func (r Resilience) withDefaults() Resilience {
	d := DefaultResilience()
	if r.SourceTimeout <= 0 {
		r.SourceTimeout = d.SourceTimeout
	}
	if r.Retries < 0 {
		r.Retries = d.Retries
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = d.BackoffBase
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = d.BackoffMax
	}
	r.Breaker = r.Breaker.withDefaults()
	return r
}

// guard is the per-source fault-tolerance state. Guards are shared
// between a base Federator and every WithLinks snapshot, so breaker
// state persists across snapshot publications.
type guard struct {
	breaker *Breaker
	mu      sync.Mutex
	rng     *rand.Rand
}

func newGuard(cfg BreakerConfig, seed int64) *guard {
	return &guard{breaker: NewBreaker(cfg), rng: rand.New(rand.NewSource(seed))}
}

func (g *guard) jitter(d time.Duration) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d <= 0 {
		return 0
	}
	return time.Duration(g.rng.Int63n(int64(d)) + 1)
}

// SourceStatus is the health view of one federated source.
type SourceStatus struct {
	Name string
	// Guarded is false for local in-memory sources that cannot fail.
	Guarded bool
	Breaker BreakerState
}

// SourceStatuses reports the per-source circuit state, in registration
// order. Snapshots share guards with their base federator, so statuses
// read from any of them agree.
func (f *Federator) SourceStatuses() []SourceStatus {
	out := make([]SourceStatus, len(f.sources))
	for i, src := range f.sources {
		out[i] = SourceStatus{Name: src.Name, Guarded: src.Access != nil}
		if g := f.guards[i]; g != nil {
			out[i].Breaker = g.breaker.State()
		}
	}
	return out
}

// evalCtx carries the per-evaluation fault state: the request context
// and the per-source availability decisions. Availability is decided
// entirely up front — newEvalCtx probes every guarded source in the
// plan's probe set in parallel (one probe per source per query, with
// deadline, retries and breaker), before any pattern is evaluated.
// Deciding availability ahead of evaluation makes Degraded a pure
// function of the plan and the sources' health: it cannot vary with
// join order, worker count or how early the row stream runs dry, which
// the equivalence harness relies on. After construction the evalCtx's
// fields are read-only and therefore safe to share across evaluation
// workers; stats (non-nil only under adaptive execution) is internally
// atomic and mutated through it.
type evalCtx struct {
	ctx      context.Context
	avail    []bool // per source index; true = usable by this query
	degraded []int  // probed sources that failed, ascending
	// stats is this query's observation table; nil unless the evaluator
	// runs adaptively (Options.adaptive()).
	stats *RuntimeStats
	// learned is the plan's validated cross-query observation table, or
	// nil when it holds no usable (or only stale) data.
	learned *obsTable
}

// learnedExpansion returns the learned per-row multiplier of a stage
// from earlier queries over the same cached plan, if any.
func (ec *evalCtx) learnedExpansion(stage int) (float64, bool) {
	if ec.learned == nil {
		return 0, false
	}
	return ec.learned.expansion(stage)
}

// newEvalCtx probes the plan's guarded sources concurrently and
// records the availability verdicts. probe holds guarded source
// indexes only (see plan.probe); unguarded local sources are always
// available. Under adaptive execution (stats non-nil) each probe's
// latency is recorded as the source's observed round-trip cost.
func (f *Federator) newEvalCtx(ctx context.Context, probe []int, stats *RuntimeStats) *evalCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	ec := &evalCtx{ctx: ctx, avail: make([]bool, len(f.sources)), stats: stats}
	for i := range ec.avail {
		ec.avail[i] = f.guards[i] == nil
	}
	if len(probe) == 0 {
		return ec
	}
	results := make([]bool, len(probe))
	var wg sync.WaitGroup
	for k, si := range probe {
		wg.Add(1)
		go func(k, si int) {
			defer wg.Done()
			start := time.Now()
			results[k] = f.probeSource(ctx, si)
			if stats != nil {
				stats.recordProbe(si, time.Since(start))
			}
		}(k, si)
	}
	wg.Wait()
	for k, si := range probe {
		ec.avail[si] = results[k]
		if !results[k] {
			ec.degraded = append(ec.degraded, si)
		}
	}
	return ec
}

// available reports whether source si may be used by this evaluation.
func (ec *evalCtx) available(si int) bool { return ec.avail[si] }

func (ec *evalCtx) degradedNames(f *Federator) []string {
	if len(ec.degraded) == 0 {
		return nil
	}
	names := make([]string, 0, len(ec.degraded))
	for _, si := range ec.degraded {
		names = append(names, f.sources[si].Name)
	}
	sort.Strings(names)
	return names
}

// probeSource runs the source's access hook under the resilience
// policy: per-attempt deadline, bounded retries with jittered
// exponential backoff, and the circuit breaker around the whole
// outcome.
func (f *Federator) probeSource(ctx context.Context, si int) bool {
	g := f.guards[si]
	if !g.breaker.Allow() {
		return false // open circuit: skip the source without touching it
	}
	access := f.sources[si].Access
	res := f.res
	backoff := res.BackoffBase
	for attempt := 0; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, res.SourceTimeout)
		err := access(actx)
		cancel()
		if err == nil {
			g.breaker.Record(true)
			return true
		}
		if attempt >= res.Retries || ctx.Err() != nil {
			g.breaker.Record(false)
			return false
		}
		select {
		case <-time.After(g.jitter(backoff)):
		case <-ctx.Done():
			g.breaker.Record(false)
			return false
		}
		backoff *= 2
		if backoff > res.BackoffMax {
			backoff = res.BackoffMax
		}
	}
}
