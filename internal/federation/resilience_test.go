package federation

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"alex/internal/links"
	"alex/internal/rdf"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: 10 * time.Second, Successes: 2})
	b.now = func() time.Time { return clock }

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	// Failures below the threshold keep it closed; a success resets the
	// streak.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("3 consecutive failures did not open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	// Cooldown elapses: half-open probes allowed.
	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown probe = %v, want half-open", b.State())
	}
	// A half-open failure reopens immediately.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("half-open failure did not reopen the breaker")
	}
	// Recover: probe again, then enough successes close it.
	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown probe refused")
	}
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatal("one success closed the breaker early")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("enough half-open successes did not close the breaker")
	}
}

// TestHalfOpenSingleProbe: while half-open, only one probe may be in
// flight — concurrent callers are rejected until its outcome is
// recorded, so a barely-recovered source is never hammered.
func TestHalfOpenSingleProbe(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Successes: 2})
	b.now = func() time.Time { return clock }

	b.Record(false) // trip
	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the first probe")
	}
	if b.Allow() || b.Allow() {
		t.Fatal("half-open breaker allowed concurrent probes")
	}
	// The probe resolving releases the token for the next single probe.
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatal("one success of two closed the breaker early")
	}
	if !b.Allow() {
		t.Fatal("resolved probe did not release the half-open token")
	}
	if b.Allow() {
		t.Fatal("second half-open probe admitted a concurrent caller")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("enough probe successes did not close the breaker")
	}

	// A failed probe reopens and clears the token: after the next
	// cooldown exactly one new probe gets through again.
	b.Record(false)
	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the probe after a failed recovery cycle")
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed concurrent probes")
	}
}

// flakyWorld builds a two-source federation where ds2 is reachable only
// while *up is non-zero. Each dataset contributes distinct rows to the
// test query so degradation is observable in the row count.
func flakyWorld(t *testing.T, up *atomic.Bool, calls *atomic.Int64) *Federator {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	p := rdf.IRI("http://x/p")
	g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/a"), P: p, O: rdf.Literal("from-ds1")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://ds2/b"), P: p, O: rdf.Literal("from-ds2")})

	f := New(dict)
	f.SetResilience(Resilience{
		SourceTimeout: 50 * time.Millisecond,
		Retries:       1,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
		Breaker:       BreakerConfig{Failures: 2, Cooldown: 50 * time.Millisecond, Successes: 1},
	})
	if err := f.Add(Source{Name: "ds1", Graph: g1}); err != nil {
		t.Fatal(err)
	}
	err := f.Add(Source{Name: "ds2", Graph: g2, Access: func(ctx context.Context) error {
		calls.Add(1)
		if up.Load() {
			return nil
		}
		return errors.New("connection refused")
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())
	return f
}

const bothSourcesQuery = `SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }`

func TestDegradedPartialResults(t *testing.T) {
	var up atomic.Bool
	var calls atomic.Int64
	up.Store(true)
	f := flakyWorld(t, &up, &calls)

	// Healthy: both sources answer, nothing degraded.
	rs, err := f.Query(bothSourcesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || len(rs.Degraded) != 0 {
		t.Fatalf("healthy query: %d rows, degraded %v", len(rs.Rows), rs.Degraded)
	}

	// ds2 down: the query still succeeds with ds1's row and a marker.
	up.Store(false)
	rs, err = f.Query(bothSourcesQuery)
	if err != nil {
		t.Fatalf("query with a down source must not error: %v", err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("degraded query rows = %d, want 1 (partial)", len(rs.Rows))
	}
	if len(rs.Degraded) != 1 || rs.Degraded[0] != "ds2" {
		t.Fatalf("degraded = %v, want [ds2]", rs.Degraded)
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	var up atomic.Bool
	var calls atomic.Int64
	f := flakyWorld(t, &up, &calls) // starts down

	// Each failed query probes once (memoized per query) and records one
	// breaker failure after exhausting its retry. Threshold 2 → two
	// queries open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := f.Query(bothSourcesQuery); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.SourceStatuses()[1]; st.Breaker != BreakerOpen || !st.Guarded {
		t.Fatalf("breaker after failures = %+v, want open", st)
	}
	// Open circuit: queries skip the source without calling Access.
	before := calls.Load()
	rs, err := f.Query(bothSourcesQuery)
	if err != nil || len(rs.Degraded) != 1 {
		t.Fatalf("open-circuit query: err=%v degraded=%v", err, rs.Degraded)
	}
	if calls.Load() != before {
		t.Fatal("open circuit still probed the source")
	}

	// After cooldown the breaker half-opens and a healthy probe closes
	// it (Successes: 1); results are whole again.
	up.Store(true)
	time.Sleep(60 * time.Millisecond)
	rs, err = f.Query(bothSourcesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || len(rs.Degraded) != 0 {
		t.Fatalf("recovered query: %d rows, degraded %v", len(rs.Rows), rs.Degraded)
	}
	if st := f.SourceStatuses()[1]; st.Breaker != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st.Breaker)
	}
}

// TestSlowSourceTimesOut: a hanging source is bounded by the per-source
// deadline and degrades the query rather than stalling it.
func TestSlowSourceTimesOut(t *testing.T) {
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	p := rdf.IRI("http://x/p")
	g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/a"), P: p, O: rdf.Literal("v")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://ds2/b"), P: p, O: rdf.Literal("w")})
	f := New(dict)
	f.SetResilience(Resilience{
		SourceTimeout: 20 * time.Millisecond,
		Retries:       0,
		BackoffBase:   time.Millisecond,
	})
	if err := f.Add(Source{Name: "ds1", Graph: g1}); err != nil {
		t.Fatal(err)
	}
	err := f.Add(Source{Name: "slow", Graph: g2, Access: func(ctx context.Context) error {
		<-ctx.Done() // hang until the deadline cuts us off
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())

	start := time.Now()
	rs, err := f.Query(bothSourcesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("slow source stalled the query for %s", elapsed)
	}
	if len(rs.Rows) != 1 || len(rs.Degraded) != 1 || rs.Degraded[0] != "slow" {
		t.Fatalf("rows=%d degraded=%v", len(rs.Rows), rs.Degraded)
	}
}

// TestSnapshotsShareBreakerState: WithLinks snapshots must observe (and
// feed) the same breaker as the base federator, so failures seen by one
// published snapshot protect the next.
func TestSnapshotsShareBreakerState(t *testing.T) {
	var up atomic.Bool
	var calls atomic.Int64
	f := flakyWorld(t, &up, &calls) // down

	snap1 := f.WithLinks(links.NewSet())
	for i := 0; i < 2; i++ {
		if _, err := snap1.Query(bothSourcesQuery); err != nil {
			t.Fatal(err)
		}
	}
	snap2 := f.WithLinks(links.NewSet())
	if st := snap2.SourceStatuses()[1]; st.Breaker != BreakerOpen {
		t.Fatalf("fresh snapshot breaker = %v, want open (shared state)", st.Breaker)
	}
	before := calls.Load()
	if _, err := snap2.Query(bothSourcesQuery); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker on a fresh snapshot still probed the source")
	}
}

// TestProbeMemoizedPerQuery: one query over a many-pattern BGP probes a
// failing source once, not once per pattern per row.
func TestProbeMemoizedPerQuery(t *testing.T) {
	var up atomic.Bool
	var calls atomic.Int64
	f := flakyWorld(t, &up, &calls) // down; Retries: 1 → 2 calls per probe
	q := fmt.Sprintf("SELECT ?a WHERE { ?a <http://x/p> ?b . ?c <http://x/p> ?d . }")
	if _, err := f.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 { // 1 probe = initial try + 1 retry
		t.Fatalf("access called %d times, want 2 (memoized probe)", got)
	}
}
