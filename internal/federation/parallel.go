package federation

import (
	"runtime"
	"sync"
)

// workerCount resolves Options.Workers: 0 (or negative) means one
// worker per CPU.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelThreshold is the minimum number of input rows worth
// fanning out; below it goroutine startup dominates the row work.
const parallelThreshold = 16

// mapRows applies fn to every input row, collecting the rows fn emits,
// and returns them in the exact order the serial loop would produce:
// the input is split into contiguous chunks, one worker per chunk,
// each worker appends to its own output slice, and the slices are
// concatenated in chunk order. fn must be safe to call concurrently
// and must only emit through its own emit argument. This is the same
// deterministic-merge discipline the PR 4 space build uses: parallel
// output is byte-identical to serial output by construction.
func mapRows(workers int, in []irow, fn func(r irow, emit func(irow))) []irow {
	if workers <= 1 || len(in) < parallelThreshold || len(in) < workers {
		var out []irow
		for _, r := range in {
			fn(r, func(nr irow) { out = append(out, nr) })
		}
		return out
	}

	outs := make([][]irow, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(in) / workers
		hi := (w + 1) * len(in) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w int, chunk []irow) {
			defer wg.Done()
			var out []irow
			for _, r := range chunk {
				fn(r, func(nr irow) { out = append(out, nr) })
			}
			outs[w] = out
		}(w, in[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]irow, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}
