package federation

import (
	"testing"
)

// BenchmarkAdaptiveQuery measures what mid-query re-planning is worth
// on the skewed-hub profile, where the static planner provably picks
// the wrong join order (it schedules the 8×-fan-out connectedWith
// pattern before the 10×-shrinking type filter; see synth.runSkewed).
// Both configurations run with a pre-warmed plan cache so the
// comparison isolates execution order, not parsing:
//
//   - static: ReplanEvery=0, the PR-5 plan executed as compiled.
//   - adaptive: ReplanEvery=1 with the plan's learned cardinalities
//     already primed — the steady state of a hot query under alexd.
//
// `make bench-query` records both rows in BENCH_query.json; the
// adaptive row's throughput over static is the headline win.
func BenchmarkAdaptiveQuery(b *testing.B) {
	scale := 1.0
	if testing.Short() {
		scale = 0.1
	}
	f, _, query := skewedFederation(b, scale)

	run := func(b *testing.B, fed *Federator) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Query(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("static", func(b *testing.B) {
		fed := withOptions(f, Options{})
		fed.SetPlanCache(NewPlanCache(16))
		if _, err := fed.Query(query); err != nil { // prime the plan cache
			b.Fatal(err)
		}
		run(b, fed)
	})
	b.Run("adaptive", func(b *testing.B) {
		fed := withOptions(f, Options{ReplanEvery: 1})
		fed.SetPlanCache(NewPlanCache(16))
		// Two priming queries: the first compiles the plan and observes
		// the fan-out, the second already executes the learned order.
		for i := 0; i < 2; i++ {
			if _, err := fed.Query(query); err != nil {
				b.Fatal(err)
			}
		}
		run(b, fed)
	})
}
