package federation

import (
	"fmt"
	"runtime"
	"testing"

	"alex/internal/rdf"
	"alex/internal/synth"
)

// benchFederation builds the benchmark federation: the dbpedia-nytimes
// synth pair with ground-truth sameAs links installed, queried by a
// three-pattern join written in pessimal order (broad label scan first,
// cross-source join second, selective category constant last). The
// planner's job is to hoist the category pattern; the workers' job is
// to fan out the cross-source join; CoW provenance avoids cloning a
// Set per intermediate row.
func benchFederation(b *testing.B) (*Federator, string) {
	b.Helper()
	prof, ok := synth.ProfileByName("dbpedia-nytimes")
	if !ok {
		b.Fatal("missing profile")
	}
	if testing.Short() {
		prof = prof.Scale(0.1)
	}
	ds := synth.Generate(prof)
	f := New(ds.Dict)
	if err := f.AddSource("ds1", ds.G1); err != nil {
		b.Fatal(err)
	}
	if err := f.AddSource("ds2", ds.G2); err != nil {
		b.Fatal(err)
	}
	f.SetLinks(ds.GroundTruth)

	// Pick the category of the first ground-truth-matched entity
	// (links.Set.Slice is sorted, and generation is seeded): a matched
	// entity always carries the ds2 attributes through its sameAs link,
	// so the selective pattern is guaranteed a non-empty join, and the
	// pick — hence the measured row count — is identical run to run.
	// The previous first-ForEachMatch pick followed map iteration
	// order, which both jittered the numbers and intermittently chose a
	// category with no cross-source rows in -short mode.
	catID, ok := ds.Dict.Lookup(synth.P1Cat)
	if !ok {
		b.Fatal("category predicate missing from dictionary")
	}
	var cat string
	first := ds.GroundTruth.Slice()[0]
	ds.G1.ForEachMatchIDs(first.E1, catID, 0, true, true, false, func(_, _, mo rdf.ID) bool {
		cat = ds.Dict.Term(mo).Value
		return false
	})
	if cat == "" {
		b.Fatal("no category value on the first matched entity")
	}
	query := fmt.Sprintf(`SELECT ?e ?n ?g ?b ?k WHERE {
		?e <http://ds1.example.org/onto/label> ?n .
		?e <http://ds2.example.org/prop/group> ?g .
		?e <http://ds2.example.org/prop/born> ?b .
		?e <http://ds2.example.org/prop/kind> ?k .
		?e <http://ds1.example.org/onto/category> %q .
	}`, cat)

	// Sanity: the query must return rows (and cross links) or the
	// numbers below measure an empty evaluation.
	rs, err := withOptions(f, legacyOptions).Query(query)
	if err != nil {
		b.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		b.Fatal("benchmark query returned no rows")
	}
	return f, query
}

// BenchmarkFederatedQuery measures end-to-end query latency in three
// configurations:
//
//   - serial: the legacy evaluator (written order, 1 worker, cloned
//     provenance), no plan cache — the pre-PR-5 baseline.
//   - cold: the fast path (reordered, GOMAXPROCS workers, CoW
//     provenance) but parsing and planning on every call.
//   - warm: the fast path with a pre-warmed plan cache, the steady
//     state of alexd's /query loop.
//
// Run with -cpu=1,2,4,8 to get the scaling curve; `make bench-query`
// records it as BENCH_query.json.
func BenchmarkFederatedQuery(b *testing.B) {
	f, query := benchFederation(b)

	run := func(b *testing.B, fed *Federator) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Query(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("serial", func(b *testing.B) {
		// The legacy baseline is single-goroutine by definition, so pin
		// GOMAXPROCS to 1 regardless of -cpu: the only effect extra Ps
		// have on this allocation-heavy serial loop is concurrent-GC
		// interference, which made the row read ~35% slower at -cpu=4
		// than at -cpu=1 for identical work (GOGC=off removes the
		// inversion entirely). The row is now CPU-count-invariant.
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		run(b, withOptions(f, legacyOptions))
	})
	b.Run("cold", func(b *testing.B) {
		run(b, withOptions(f, Options{}))
	})
	b.Run("warm", func(b *testing.B) {
		fed := withOptions(f, Options{})
		fed.SetPlanCache(NewPlanCache(16))
		if _, err := fed.Query(query); err != nil { // prime the cache
			b.Fatal(err)
		}
		run(b, fed)
	})
}
