package federation

import (
	"fmt"
	"testing"

	"alex/internal/rdf"
	"alex/internal/synth"
)

// benchFederation builds the benchmark federation: the dbpedia-nytimes
// synth pair with ground-truth sameAs links installed, queried by a
// three-pattern join written in pessimal order (broad label scan first,
// cross-source join second, selective category constant last). The
// planner's job is to hoist the category pattern; the workers' job is
// to fan out the cross-source join; CoW provenance avoids cloning a
// Set per intermediate row.
func benchFederation(b *testing.B) (*Federator, string) {
	b.Helper()
	prof, ok := synth.ProfileByName("dbpedia-nytimes")
	if !ok {
		b.Fatal("missing profile")
	}
	if testing.Short() {
		prof = prof.Scale(0.1)
	}
	ds := synth.Generate(prof)
	f := New(ds.Dict)
	if err := f.AddSource("ds1", ds.G1); err != nil {
		b.Fatal(err)
	}
	if err := f.AddSource("ds2", ds.G2); err != nil {
		b.Fatal(err)
	}
	f.SetLinks(ds.GroundTruth)

	// Pick a real category value so the selective pattern matches a
	// small but non-empty entity subset.
	var cat string
	ds.G1.ForEachMatch(rdf.Pattern{P: &synth.P1Cat}, func(t rdf.Triple) bool {
		cat = t.O.Value
		return false
	})
	if cat == "" {
		b.Fatal("no category values generated")
	}
	query := fmt.Sprintf(`SELECT ?e ?n ?g ?b ?k WHERE {
		?e <http://ds1.example.org/onto/label> ?n .
		?e <http://ds2.example.org/prop/group> ?g .
		?e <http://ds2.example.org/prop/born> ?b .
		?e <http://ds2.example.org/prop/kind> ?k .
		?e <http://ds1.example.org/onto/category> %q .
	}`, cat)

	// Sanity: the query must return rows (and cross links) or the
	// numbers below measure an empty evaluation.
	rs, err := withOptions(f, legacyOptions).Query(query)
	if err != nil {
		b.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		b.Fatal("benchmark query returned no rows")
	}
	return f, query
}

// BenchmarkFederatedQuery measures end-to-end query latency in three
// configurations:
//
//   - serial: the legacy evaluator (written order, 1 worker, cloned
//     provenance), no plan cache — the pre-PR-5 baseline.
//   - cold: the fast path (reordered, GOMAXPROCS workers, CoW
//     provenance) but parsing and planning on every call.
//   - warm: the fast path with a pre-warmed plan cache, the steady
//     state of alexd's /query loop.
//
// Run with -cpu=1,2,4,8 to get the scaling curve; `make bench-query`
// records it as BENCH_query.json.
func BenchmarkFederatedQuery(b *testing.B) {
	f, query := benchFederation(b)

	run := func(b *testing.B, fed *Federator) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Query(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("serial", func(b *testing.B) {
		run(b, withOptions(f, legacyOptions))
	})
	b.Run("cold", func(b *testing.B) {
		run(b, withOptions(f, Options{}))
	})
	b.Run("warm", func(b *testing.B) {
		fed := withOptions(f, Options{})
		fed.SetPlanCache(NewPlanCache(16))
		if _, err := fed.Query(query); err != nil { // prime the cache
			b.Fatal(err)
		}
		run(b, fed)
	})
}
