// Package federation implements a federated SPARQL query processor over
// multiple RDF sources connected by owl:sameAs links, in the role FedX
// plays in the paper (§3.2, Figure 1). A query's basic graph pattern is
// matched across all sources; when a variable bound to an entity of one
// source must join with a pattern in another source, the join crosses a
// sameAs link, and the answer row records every link it used. Approving
// or rejecting an answer therefore becomes approving or rejecting those
// links — the feedback signal ALEX consumes.
//
// The read path is built for serving: queries are compiled into
// link-independent plans (selectivity-ordered joins, see plan.go)
// that an LRU cache shares across WithLinks snapshots (plancache.go),
// intermediate rows fan out across workers with an order-preserving
// merge (parallel.go), and per-row provenance is a copy-on-write
// links.Frozen chain materialized only at emit time (prov.go). Every
// layer is answer-identical to the legacy serial evaluator, which
// remains reachable via Options for the equivalence harness.
package federation

import (
	"context"
	"fmt"
	"sort"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
)

// Source is a named dataset participating in the federation. Access, if
// non-nil, is consulted before the source's data is used by a query
// (see AccessFunc): it makes the source fallible, which activates the
// per-source deadline, retry and circuit-breaker machinery.
type Source struct {
	Name   string
	Graph  store.TripleStore
	Access AccessFunc
}

// Row is one federated answer: variable bindings plus the sameAs links
// used to produce it.
type Row struct {
	Binding sparql.Binding
	Used    links.Set
}

// irow is an intermediate row during evaluation. Provenance is carried
// behind the prov interface so the evaluator is agnostic to the
// representation (copy-on-write chain vs legacy cloned Set).
type irow struct {
	b    sparql.Binding
	used prov
}

// ResultSet holds federated query solutions. For ASK queries Rows is
// empty and Ask carries the answer. Degraded lists the sources that
// were skipped during evaluation (open circuit, access failure or
// timeout): when non-empty the results are partial, not wrong — rows
// that the degraded sources would have contributed are simply missing.
type ResultSet struct {
	Vars     []string
	Rows     []Row
	Ask      bool
	Degraded []string
}

// FeedbackSink receives link-level feedback derived from answer-level
// feedback. core.System satisfies this interface.
type FeedbackSink interface {
	Feedback(l links.Link, positive bool)
}

// Federator evaluates queries across sources joined by sameAs links.
type Federator struct {
	dict    *rdf.Dict
	sources []Source
	// same maps an entity to its sameAs edges. Each edge keeps the
	// canonical Link (E1 from the first dataset) for provenance.
	same map[rdf.ID][]edge
	// linkCount is the number of distinct installed links, maintained
	// on SetLinks/WithLinks so LinkCount is O(1) on the /links path.
	linkCount int
	// predSources is the source-selection index (the role FedX's SPARQL
	// ASK probes play): for each predicate ID, which sources hold at
	// least one triple with it. Patterns with a bound predicate are
	// only evaluated against relevant sources.
	predSources map[rdf.ID][]int
	// res and guards implement the fault-tolerant read path (see
	// resilience.go). guards[i] is nil for sources without an Access
	// hook; non-nil guards are shared with WithLinks snapshots so
	// breaker state survives snapshot publication.
	res    Resilience
	guards []*guard
	// opts tunes the evaluator (workers, join order, provenance
	// representation); see plan.go.
	opts Options
	// plans, when non-nil, caches compiled plans by query text; shared
	// with WithLinks snapshots because plans are link-independent.
	plans *PlanCache
	// ametrics counts adaptive-execution events (see runtimestats.go);
	// shared with WithLinks snapshots like guards, so the counters are
	// monotone across snapshot publications.
	ametrics *adaptiveMetrics
	// traceExec, when non-nil, observes the executed stage order of
	// every group (indices into grp.Triples, in execution order). Test
	// hook for the re-planning determinism suite; never set in
	// production.
	traceExec func(grp *sparql.GroupGraphPattern, order []int)
}

// SetExecTrace installs fn as the executed-stage-order observer: after
// every group evaluation fn receives the pattern indices in the order
// they actually ran. Equivalence harnesses use it to assert that two
// federators (e.g. the mem and disk store backends) execute identical
// plans. Install before issuing queries; never use in production.
func (f *Federator) SetExecTrace(fn func(grp *sparql.GroupGraphPattern, order []int)) {
	f.traceExec = fn
}

type edge struct {
	other rdf.ID
	link  links.Link
}

// New returns a federator over the given shared dictionary.
func New(dict *rdf.Dict) *Federator {
	return &Federator{
		dict:        dict,
		same:        make(map[rdf.ID][]edge),
		predSources: make(map[rdf.ID][]int),
		res:         DefaultResilience(),
		ametrics:    &adaptiveMetrics{},
	}
}

// SetResilience replaces the fault-tolerance policy. Breakers of
// already registered sources are rebuilt with the new configuration
// (and therefore reset to closed). Not safe concurrently with queries.
func (f *Federator) SetResilience(r Resilience) {
	f.res = r.withDefaults()
	for i, src := range f.sources {
		if src.Access != nil {
			f.guards[i] = newGuard(f.res.Breaker, int64(i)+1)
		}
	}
}

// AddSource registers a local dataset (either store backend); see Add.
func (f *Federator) AddSource(name string, g store.TripleStore) error {
	return f.Add(Source{Name: name, Graph: g})
}

// Add registers a source. All sources must share the federator's
// dictionary so that term IDs are comparable. The source's predicates
// are indexed for source selection; triples inserted into the graph
// after registration with previously unseen predicates are not visible
// to the index (re-register to refresh). A source with an Access hook
// gets a circuit breaker under the current resilience policy.
func (f *Federator) Add(src Source) error {
	if src.Graph.Dict() != f.dict {
		return fmt.Errorf("federation: source %q does not share the federator dictionary", src.Name)
	}
	idx := len(f.sources)
	f.sources = append(f.sources, src)
	var g *guard
	if src.Access != nil {
		g = newGuard(f.res.Breaker, int64(idx)+1)
	}
	f.guards = append(f.guards, g)
	for _, p := range src.Graph.PredicateIDs() {
		f.predSources[p] = append(f.predSources[p], idx)
	}
	return nil
}

// Sources returns the registered sources.
func (f *Federator) Sources() []Source { return f.sources }

// SetLinks replaces the sameAs link set. Call it again whenever ALEX's
// candidate set changes. The replacement resolution map is built fully
// before it is installed, so a Query that started before SetLinks
// returns sees either the old map or the new one, never a half-filled
// one. SetLinks itself is still a write: callers that share one
// Federator across goroutines must not call it concurrently with Query —
// use WithLinks to publish an immutable snapshot instead.
func (f *Federator) SetLinks(ls links.Set) {
	f.same = buildSameAs(ls)
	f.linkCount = ls.Len()
}

// WithLinks returns a new Federator over the same dictionary and sources
// with the given sameAs link set installed. The sources, the
// source-selection index and the plan cache are shared (sources and
// index are immutable after registration; plans are link-independent);
// only the resolution map is fresh. The returned Federator is a
// snapshot: treat it as immutable after publication — never call
// SetLinks or AddSource on it — and concurrent Query calls are then
// safe without locking. This is the read path of the alexd
// single-writer architecture.
func (f *Federator) WithLinks(ls links.Set) *Federator {
	return &Federator{
		dict:        f.dict,
		sources:     f.sources,
		same:        buildSameAs(ls),
		linkCount:   ls.Len(),
		predSources: f.predSources,
		res:         f.res,
		guards:      f.guards,
		opts:        f.opts,
		plans:       f.plans,
		ametrics:    f.ametrics,
		traceExec:   f.traceExec,
	}
}

func buildSameAs(ls links.Set) map[rdf.ID][]edge {
	same := make(map[rdf.ID][]edge, 2*ls.Len())
	for _, l := range ls.Slice() {
		same[l.E1] = append(same[l.E1], edge{other: l.E2, link: l})
		same[l.E2] = append(same[l.E2], edge{other: l.E1, link: l})
	}
	return same
}

// LinkCount returns the number of distinct sameAs links installed.
// O(1): the count is maintained by SetLinks/WithLinks, since this
// accessor sits on the hot /links handler path.
func (f *Federator) LinkCount() int { return f.linkCount }

// Query parses and evaluates a federated SELECT query.
func (f *Federator) Query(query string) (*ResultSet, error) {
	return f.QueryContext(context.Background(), query)
}

// QueryContext parses and evaluates a federated query; ctx bounds the
// per-source access probes (and their retries). When a plan cache is
// installed (SetPlanCache), the parse and join-ordering work is served
// from the cache for repeated query texts.
func (f *Federator) QueryContext(ctx context.Context, query string) (*ResultSet, error) {
	p, err := f.planFor(query)
	if err != nil {
		return nil, err
	}
	return f.evalPlan(ctx, p)
}

// planFor returns a compiled plan for the query text, consulting the
// plan cache when one is installed. Parse failures are returned, not
// cached: malformed queries are cheap to re-reject and must not evict
// useful plans.
func (f *Federator) planFor(query string) (*plan, error) {
	if f.plans != nil {
		if p := f.plans.get(query); p != nil {
			return p, nil
		}
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	p := f.planQuery(q)
	if f.plans != nil {
		f.plans.put(query, p)
	}
	return p, nil
}

// Eval evaluates a parsed query across the federation.
func (f *Federator) Eval(q *sparql.Query) (*ResultSet, error) {
	return f.EvalContext(context.Background(), q)
}

// EvalContext evaluates a parsed query across the federation. Sources
// whose access fails under the resilience policy are skipped and
// reported in ResultSet.Degraded; the evaluation itself never fails
// because of an unavailable source. The query is planned on every
// call — the plan cache only applies to QueryContext, which has the
// query text to key it by.
func (f *Federator) EvalContext(ctx context.Context, q *sparql.Query) (*ResultSet, error) {
	return f.evalPlan(ctx, f.planQuery(q))
}

// evalPlan runs a compiled plan: probe the plan's sources (in
// parallel, so Degraded is decided before evaluation and independent
// of join order), evaluate the pattern tree with the configured worker
// count, then finalize through the sparql engine and re-associate
// per-row provenance. Under adaptive execution a RuntimeStats table
// rides along: probes and stages record into it, ranking consults it,
// and it is folded into the plan's learned table at the end so the
// next query over a cached plan starts from real cardinalities.
func (f *Federator) evalPlan(ctx context.Context, p *plan) (*ResultSet, error) {
	if len(f.sources) == 0 {
		return nil, fmt.Errorf("federation: no sources registered")
	}
	var stats *RuntimeStats
	if f.opts.adaptive() && p.nstages > 0 {
		stats = newRuntimeStats(p.nstages, len(f.sources))
	}
	ec := f.newEvalCtx(ctx, p.probe, stats)
	if stats != nil && p.obs != nil {
		if p.obs.validate(f.linkCount) {
			ec.learned = p.obs
			if f.ametrics != nil {
				f.ametrics.learnedHits.Add(1)
			}
		}
	}
	workers := f.opts.workerCount()
	var empty prov
	if f.opts.LegacyProvenance {
		empty = cloneProv{s: links.NewSet()}
	} else {
		empty = cowProv{}
	}
	rows := f.evalGroup(ec, p, p.q.Where, []irow{{b: sparql.Binding{}, used: empty}}, workers)
	if stats != nil {
		stats.foldInto(p.obs)
	}

	// Project/sort/limit via the sparql engine, keeping provenance
	// aligned by evaluating on indices.
	bindings := make([]sparql.Binding, len(rows))
	for i, r := range rows {
		bindings[i] = r.b
	}
	res, err := sparql.Finalize(p.q, bindings)
	if err != nil {
		return nil, err
	}
	if p.q.Form == sparql.FormAsk {
		return &ResultSet{Ask: res.Ask, Degraded: ec.degradedNames(f)}, nil
	}
	out := &ResultSet{Vars: res.Vars, Degraded: ec.degradedNames(f)}
	if len(p.q.Aggregates) > 0 {
		// An aggregate row depends on every solution that fed its
		// group; attributing provenance per group would need the
		// grouping keys of each input row, so attach the union — any
		// feedback on an aggregate answer concerns all links that
		// contributed to it.
		all := links.NewSet()
		for _, r := range rows {
			for l := range r.used.set() {
				all.Add(l)
			}
		}
		for _, b := range res.Rows {
			out.Rows = append(out.Rows, Row{Binding: b, Used: all.Clone()})
		}
		return out, nil
	}
	// Re-associate provenance: Finalize may reorder, deduplicate and
	// slice; match rows by identity of the projected bindings.
	used := make(map[string]links.Set)
	for i, b := range bindings {
		k := f.projectionKey(res.Vars, b)
		if prev, ok := used[k]; ok {
			// merge provenance of duplicate solutions
			for l := range rows[i].used.set() {
				prev.Add(l)
			}
		} else {
			used[k] = rows[i].used.set()
		}
	}
	for _, b := range res.Rows {
		k := f.projectionKey(res.Vars, b)
		u := used[k]
		if u == nil {
			u = links.NewSet()
		}
		out.Rows = append(out.Rows, Row{Binding: b, Used: u})
	}
	return out, nil
}

// projectionKey encodes the projected bindings of a row as a map key.
// Terms are encoded by dictionary ID, with distinct tags for an
// unbound variable (0x00), a known term (0x01 + little-endian ID) and
// the defensive fallback of a term missing from the dictionary (0x02 +
// length-prefixed rendering), so an unbound variable can never collide
// with any bound value — including literals containing NUL bytes,
// which the old Term.String()+"\x00" concatenation could not separate.
func (f *Federator) projectionKey(vars []string, b sparql.Binding) string {
	buf := make([]byte, 0, 5*len(vars))
	for _, v := range vars {
		t, ok := b[v]
		if !ok {
			buf = append(buf, 0x00)
			continue
		}
		if id, ok := f.dict.Lookup(t); ok {
			buf = append(buf, 0x01, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			continue
		}
		s := t.String()
		n := len(s)
		buf = append(buf, 0x02, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		buf = append(buf, s...)
	}
	return string(buf)
}

// evalGroup evaluates one group pattern over the input rows: triple
// patterns in the plan's selectivity order, then union constructs,
// optionals and filters — each stage fanned out across workers with an
// order-preserving merge, so the output row order equals the serial
// evaluator's. Nested groups reached through OPTIONAL run serially
// (workers=1): the per-row fan-out already saturates the workers, and
// nesting parallelism would only multiply goroutines.
func (f *Federator) evalGroup(ec *evalCtx, p *plan, grp *sparql.GroupGraphPattern, input []irow, workers int) []irow {
	rows := input

	if ec.stats != nil {
		rows = f.evalTriplesAdaptive(ec, p, grp, rows, workers)
	} else {
		var executed []int
		for _, ti := range p.order[grp] {
			tp := grp.Triples[ti]
			rows = mapRows(workers, rows, func(r irow, emit func(irow)) {
				f.matchPattern(ec, tp, r, emit)
			})
			if f.traceExec != nil {
				executed = append(executed, ti)
			}
			if len(rows) == 0 {
				break
			}
		}
		if f.traceExec != nil {
			f.traceExec(grp, executed)
		}
	}

	for _, alts := range grp.Unions {
		var merged []irow
		for _, alt := range alts {
			merged = append(merged, f.evalGroup(ec, p, alt, rows, workers)...)
		}
		rows = merged
	}

	for _, opt := range grp.Optionals {
		opt := opt
		rows = mapRows(workers, rows, func(r irow, emit func(irow)) {
			sub := f.evalGroup(ec, p, opt, []irow{r}, 1)
			if len(sub) == 0 {
				emit(r)
				return
			}
			for _, nr := range sub {
				emit(nr)
			}
		})
	}

	for _, flt := range grp.Filters {
		flt := flt
		rows = mapRows(workers, rows, func(r irow, emit func(irow)) {
			v, err := flt.Eval(r.b)
			if err != nil {
				return // SPARQL expression error: filter is false
			}
			if ok, err := sparql.EffectiveBool(v); err == nil && ok {
				emit(r)
			}
		})
	}
	return rows
}

// matchPattern matches tp against the relevant sources, extending row.
// When a bound entity does not occur in a source, its sameAs
// equivalents are tried, and any equivalence used is recorded in the
// row's provenance. Source selection: a pattern whose predicate is a
// constant (or a variable already bound) only visits sources holding
// that predicate. Sources that failed their upfront availability probe
// are skipped (the evaluation degrades instead of failing).
func (f *Federator) matchPattern(ec *evalCtx, tp sparql.TriplePattern, row irow, emit func(irow)) {
	if srcs, ok := f.selectSources(tp.P, row.b); ok {
		for _, si := range srcs {
			if !ec.available(si) {
				continue
			}
			f.matchInSource(f.sources[si].Graph, tp, row, emit)
		}
		return
	}
	for si, src := range f.sources {
		if !ec.available(si) {
			continue
		}
		f.matchInSource(src.Graph, tp, row, emit)
	}
}

// selectSources returns the candidate source indexes for a predicate
// node; ok is false when the predicate is unbound (all sources apply).
func (f *Federator) selectSources(p sparql.Node, b sparql.Binding) ([]int, bool) {
	var t rdf.Term
	if p.IsVar {
		bound, isBound := b[p.Var]
		if !isBound {
			return nil, false
		}
		t = bound
	} else {
		t = p.Term
	}
	id, ok := f.dict.Lookup(t)
	if !ok {
		return nil, true // unknown predicate: no source can match
	}
	return f.predSources[id], true
}

type resolved struct {
	id   rdf.ID
	have bool
	link *links.Link // non-nil when resolving crossed a sameAs edge
}

// resolutions returns the ways a pattern node can be bound in graph g
// under the row's bindings: directly, or through each sameAs equivalent
// present in g. An unbound node yields a single wildcard resolution.
func (f *Federator) resolutions(g store.TripleStore, n sparql.Node, b sparql.Binding) []resolved {
	var t rdf.Term
	if n.IsVar {
		bound, ok := b[n.Var]
		if !ok {
			return []resolved{{have: false}}
		}
		t = bound
	} else {
		t = n.Term
	}
	var out []resolved
	if id, ok := g.Dict().Lookup(t); ok {
		// The term is known to the shared dictionary; it may still not
		// occur in this source, but direct matching will simply find
		// nothing, which is correct.
		out = append(out, resolved{id: id, have: true})
		// Entity terms additionally resolve through sameAs links.
		if t.IsIRI() {
			for _, e := range f.same[id] {
				e := e
				out = append(out, resolved{id: e.other, have: true, link: &e.link})
			}
		}
	}
	if len(out) == 0 {
		// Unknown term: no resolution matches anything.
		return nil
	}
	return out
}

func (f *Federator) matchInSource(g store.TripleStore, tp sparql.TriplePattern, row irow, emit func(irow)) {
	ss := f.resolutions(g, tp.S, row.b)
	ps := f.resolutions(g, tp.P, row.b)
	os := f.resolutions(g, tp.O, row.b)
	for _, rs := range ss {
		for _, rp := range ps {
			for _, ro := range os {
				f.matchResolved(g, tp, row, rs, rp, ro, emit)
			}
		}
	}
}

func (f *Federator) matchResolved(g store.TripleStore, tp sparql.TriplePattern, row irow, rs, rp, ro resolved, emit func(irow)) {
	g.ForEachMatchIDs(rs.id, rp.id, ro.id, rs.have, rp.have, ro.have, func(ms, mp, mo rdf.ID) bool {
		// Repeated-variable consistency before paying for the copy.
		if tp.S.IsVar && tp.O.IsVar && tp.S.Var == tp.O.Var && ms != mo {
			return true
		}
		if tp.S.IsVar && tp.P.IsVar && tp.S.Var == tp.P.Var && ms != mp {
			return true
		}
		if tp.P.IsVar && tp.O.IsVar && tp.P.Var == tp.O.Var && mp != mo {
			return true
		}
		nb := row.b.Copy()
		if tp.S.IsVar && !rs.have {
			nb[tp.S.Var] = g.Dict().Term(ms)
		}
		if tp.P.IsVar && !rp.have {
			nb[tp.P.Var] = g.Dict().Term(mp)
		}
		if tp.O.IsVar && !ro.have {
			nb[tp.O.Var] = g.Dict().Term(mo)
		}
		var crossed []links.Link
		for _, r := range []resolved{rs, rp, ro} {
			if r.link != nil {
				crossed = append(crossed, *r.link)
			}
		}
		emit(irow{b: nb, used: row.used.extend(crossed)})
		return true
	})
}

// Approve reports positive feedback on an answer row: every sameAs link
// the row used is approved (§3.2: "if the answer is correct then the
// link is correct").
func Approve(row Row, sink FeedbackSink) {
	for _, l := range row.Used.Slice() {
		sink.Feedback(l, true)
	}
}

// Reject reports negative feedback on an answer row: every link the row
// used is rejected.
func Reject(row Row, sink FeedbackSink) {
	for _, l := range row.Used.Slice() {
		sink.Feedback(l, false)
	}
}

// String renders a result set compactly for CLI display.
func (rs *ResultSet) String() string {
	s := ""
	for i, r := range rs.Rows {
		s += fmt.Sprintf("[%d]", i)
		vars := append([]string(nil), rs.Vars...)
		sort.Strings(vars)
		for _, v := range vars {
			if t, ok := r.Binding[v]; ok {
				s += fmt.Sprintf(" ?%s=%s", v, t)
			}
		}
		if r.Used.Len() > 0 {
			s += fmt.Sprintf(" (links used: %d)", r.Used.Len())
		}
		s += "\n"
	}
	return s
}
