package federation

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultPlanCacheSize is the plan-cache capacity used when a
// non-positive size is requested.
const DefaultPlanCacheSize = 512

// PlanCache is a bounded LRU cache of compiled query plans keyed by
// query text. Plans depend only on the federation's sources and their
// statistics — never on the sameAs link set — so one cache is shared
// across every WithLinks snapshot and steady-state /query traffic
// skips both the parser and the join planner. Safe for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type planEntry struct {
	key  string
	plan *plan
}

// NewPlanCache returns a cache holding up to capacity plans;
// capacity <= 0 selects DefaultPlanCacheSize.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// SetPlanCache installs a plan cache consulted by QueryContext. A nil
// cache disables caching. Not safe concurrently with queries. The
// cache is carried over to WithLinks snapshots, so install it once on
// the base federator.
func (f *Federator) SetPlanCache(pc *PlanCache) { f.plans = pc }

// PlanCacheStats returns the hit/miss counters of the installed plan
// cache, or zeros when none is installed.
func (f *Federator) PlanCacheStats() (hits, misses uint64) {
	if f.plans == nil {
		return 0, 0
	}
	return f.plans.Stats()
}

func (c *PlanCache) get(key string) *plan {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*planEntry).plan
}

func (c *PlanCache) put(key string, p *plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Another goroutine planned the same query concurrently; keep
		// the incumbent and refresh its recency.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&planEntry{key: key, plan: p})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *PlanCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many plans have been evicted by the LRU bound.
// An eviction also discards the plan's learned cardinality table, so a
// hot cache that is too small both re-plans and re-learns; the
// alexd_plan_cache_evictions_total metric makes that visible.
func (c *PlanCache) Evictions() uint64 {
	return c.evictions.Load()
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
