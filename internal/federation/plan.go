// Query planning for the federated read path. A plan is everything
// about a query that does not depend on the current sameAs link set:
// the parsed AST, a selectivity-based join order for every group
// pattern, and the set of sources the query may touch (the probe set).
// Plans are immutable after construction, which makes them safe to
// share across concurrent queries and across WithLinks snapshots, and
// therefore cacheable (see plancache.go).
package federation

import (
	"sort"

	"alex/internal/rdf"
	"alex/internal/sparql"
)

// Options tunes the federated evaluator. The zero value is the fast
// path: selectivity-ordered joins, copy-on-write provenance, and one
// worker per CPU. The legacy serial evaluator — written-order joins,
// per-row Set cloning, single-threaded — is Options{Workers: 1,
// NoReorder: true, LegacyProvenance: true}; it is kept callable so the
// equivalence harness can prove the fast path answer-identical.
type Options struct {
	// Workers is the number of goroutines sharding intermediate rows in
	// each evaluation stage. 0 means GOMAXPROCS; 1 is serial.
	Workers int
	// NoReorder disables selectivity-based join reordering and keeps
	// triple patterns in written order.
	NoReorder bool
	// LegacyProvenance tracks provenance by cloning a mutable links.Set
	// per intermediate row instead of extending an immutable
	// links.Frozen chain.
	LegacyProvenance bool
	// ReplanEvery enables adaptive execution (see adaptive.go): after
	// every ReplanEvery executed pattern stages, the remaining patterns
	// of the group are re-ranked using observed cardinalities instead of
	// static estimates. 0 disables re-planning and preserves the static
	// PR-5 plan exactly. Ignored when NoReorder is set: a pinned written
	// order leaves nothing to re-rank.
	ReplanEvery int
}

// adaptive reports whether the evaluator re-ranks patterns mid-query.
func (o Options) adaptive() bool { return o.ReplanEvery > 0 && !o.NoReorder }

// SetOptions replaces the evaluator options. Not safe concurrently
// with queries; set options before publishing a snapshot.
func (f *Federator) SetOptions(o Options) { f.opts = o }

// Opts returns the evaluator options in effect.
func (f *Federator) Opts() Options { return f.opts }

// plan is a compiled query: the AST plus per-group join orders and the
// probe set. The AST itself is never mutated — join order lives in a
// side table keyed by group identity — so planning works on
// caller-owned queries and a cached plan can serve concurrent readers.
// The one mutable field is obs, the learned cardinality table fed by
// adaptive executions; it is internally synchronized and only ever
// steers ordering, never answers, so sharing a cached plan remains
// safe (see runtimestats.go).
type plan struct {
	q *sparql.Query
	// order maps each group pattern of q to the evaluation order of its
	// Triples, as indices into grp.Triples.
	order map[*sparql.GroupGraphPattern][]int
	// stageOf assigns every triple pattern a plan-global stage id
	// (stageOf[grp][i] is the id of grp.Triples[i]), indexing the
	// RuntimeStats and obsTable counters. Ids follow the deterministic
	// planning walk, so a cached plan's ids are stable across queries.
	stageOf map[*sparql.GroupGraphPattern][]int
	// baseBound is the set of variables guaranteed bound when a group
	// starts evaluating (the planning-time bound set), the starting
	// point for binding-safety checks during adaptive re-ranking.
	baseBound map[*sparql.GroupGraphPattern]map[string]bool
	// nstages is the total number of triple-pattern stages in the plan.
	nstages int
	// obs accumulates observed per-stage cardinalities across adaptive
	// executions of this plan; nil until first planned. Cached plans
	// keep it, which is what makes hot queries converge to the best
	// order across requests.
	obs *obsTable
	// probe lists the indexes of guarded sources this query may touch;
	// they are probed in parallel before evaluation starts, which makes
	// Degraded reporting independent of join order and worker count.
	probe []int
}

// planQuery compiles q against the federator's source statistics.
func (f *Federator) planQuery(q *sparql.Query) *plan {
	p := &plan{
		q:         q,
		order:     make(map[*sparql.GroupGraphPattern][]int),
		stageOf:   make(map[*sparql.GroupGraphPattern][]int),
		baseBound: make(map[*sparql.GroupGraphPattern]map[string]bool),
	}
	probe := make(map[int]bool)
	if q.Where != nil {
		f.planGroup(q.Where, map[string]bool{}, p, probe)
	}
	p.obs = newObsTable(p.nstages)
	for si := range probe {
		p.probe = append(p.probe, si)
	}
	sort.Ints(p.probe)
	return p
}

// planGroup orders one group's triples and recurses into its nested
// groups. bound is the set of variables guaranteed bound when the
// group starts evaluating; it is extended with the group's own triple
// variables before recursing, because nested groups see those
// bindings. Union alternatives do not extend bound for each other.
func (f *Federator) planGroup(grp *sparql.GroupGraphPattern, bound map[string]bool, p *plan, probe map[int]bool) {
	p.baseBound[grp] = copyBound(bound)
	ids := make([]int, len(grp.Triples))
	for i := range ids {
		ids[i] = p.nstages + i
	}
	p.nstages += len(grp.Triples)
	p.stageOf[grp] = ids
	p.order[grp] = f.orderTriples(grp.Triples, bound, probe)

	inner := copyBound(bound)
	for _, tp := range grp.Triples {
		for _, v := range tp.Vars() {
			inner[v] = true
		}
	}
	for _, alts := range grp.Unions {
		for _, alt := range alts {
			f.planGroup(alt, copyBound(inner), p, probe)
		}
		// After a UNION construct, only variables bound in every
		// alternative are guaranteed bound. Tracking the intersection
		// buys little for ordering, so conservatively keep inner as-is.
	}
	for _, opt := range grp.Optionals {
		f.planGroup(opt, copyBound(inner), p, probe)
	}
}

func copyBound(b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(b))
	for k := range b {
		out[k] = true
	}
	return out
}

// orderTriples returns a greedy selectivity order over patterns,
// constrained so that every variable is first bound by the same
// pattern as in written order. The constraint matters for answer
// identity, not just determinism: a variable's bound value can differ
// depending on which pattern binds it first (a direct match binds the
// source's own IRI, a sameAs-resolved match binds the queried alias),
// so reordering may only move a pattern ahead of another when doing so
// cannot steal a variable's first binding. Formally: pattern i is
// schedulable iff each of its not-yet-bound variables appears in no
// unscheduled pattern j < i. The earliest unscheduled pattern is
// always schedulable, so the greedy loop cannot deadlock. Among
// schedulable patterns the one with the lowest estimated cardinality
// runs first (bound-first heuristic: already-bound positions shrink
// the estimate), with the written order as deterministic tie-break.
//
// orderTriples also folds every pattern's source selection into probe,
// so the caller learns which sources the group may touch.
func (f *Federator) orderTriples(tps []sparql.TriplePattern, bound map[string]bool, probe map[int]bool) []int {
	order := make([]int, 0, len(tps))
	for i, tp := range tps {
		f.probeSet(tp, probe)
		if f.opts.NoReorder {
			order = append(order, i)
		}
	}
	if f.opts.NoReorder {
		return order
	}

	bound = copyBound(bound)
	scheduled := make([]bool, len(tps))
	for len(order) < len(tps) {
		best, bestCost := -1, 0
		for i, tp := range tps {
			if scheduled[i] || !f.schedulable(tps, scheduled, i, bound) {
				continue
			}
			cost := f.estimatePattern(tp, bound)
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		scheduled[best] = true
		for _, v := range tps[best].Vars() {
			bound[v] = true
		}
	}
	return order
}

// schedulable reports whether pattern i may run next without stealing
// a variable's first binding from an earlier-written pattern.
func (f *Federator) schedulable(tps []sparql.TriplePattern, scheduled []bool, i int, bound map[string]bool) bool {
	for _, v := range tps[i].Vars() {
		if bound[v] {
			continue
		}
		for j := 0; j < i; j++ {
			if scheduled[j] {
				continue
			}
			for _, w := range tps[j].Vars() {
				if w == v {
					return false
				}
			}
		}
	}
	return true
}

// estimatePattern estimates the pattern's result cardinality: the sum
// over its candidate sources of the index-counted matches with the
// pattern's constants bound, shrunk by a factor of 8 for every
// position held by an already-bound variable (its runtime value is
// unknown at planning time, but a bound position joins rather than
// scans). Estimates only steer ordering, so being cheap matters more
// than being exact — CountMatch is O(1)-ish per source after PR 5's
// index counting.
func (f *Federator) estimatePattern(tp sparql.TriplePattern, bound map[string]bool) int {
	var s, p, o rdf.ID
	var haveS, haveP, haveO bool
	known := true
	resolve := func(n sparql.Node) (rdf.ID, bool) {
		if n.IsVar {
			return 0, false
		}
		id, ok := f.dict.Lookup(n.Term)
		if !ok {
			known = false // constant absent from every source
		}
		return id, ok
	}
	s, haveS = resolve(tp.S)
	p, haveP = resolve(tp.P)
	o, haveO = resolve(tp.O)
	if !known {
		return 0
	}

	srcs := f.candidateSources(tp)
	total := 0
	for _, si := range srcs {
		total += f.sources[si].Graph.CountMatch(s, p, o, haveS, haveP, haveO)
	}
	for _, n := range []sparql.Node{tp.S, tp.P, tp.O} {
		if n.IsVar && bound[n.Var] {
			total /= 8
		}
	}
	return total
}

// candidateSources returns the source indexes a pattern may touch,
// judged statically: a constant predicate restricts to the sources
// holding it (the FedX-style source-selection index); a variable
// predicate may touch every source, even if a runtime binding later
// narrows it.
func (f *Federator) candidateSources(tp sparql.TriplePattern) []int {
	if !tp.P.IsVar {
		id, ok := f.dict.Lookup(tp.P.Term)
		if !ok {
			return nil
		}
		return f.predSources[id]
	}
	all := make([]int, len(f.sources))
	for i := range all {
		all[i] = i
	}
	return all
}

// probeSet folds the pattern's candidate guarded sources into probe.
func (f *Federator) probeSet(tp sparql.TriplePattern, probe map[int]bool) {
	for _, si := range f.candidateSources(tp) {
		if f.guards[si] != nil {
			probe[si] = true
		}
	}
}
