package federation

import (
	"sync"
	"time"
)

// BreakerState is the circuit state of one federated source.
type BreakerState int32

const (
	// BreakerClosed: the source is healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the source failed repeatedly; requests are skipped
	// (the query degrades) until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; probe requests are allowed
	// through to test whether the source recovered.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a per-source circuit breaker.
type BreakerConfig struct {
	// Failures is the number of consecutive failures that opens the
	// circuit.
	Failures int
	// Cooldown is how long an open circuit rejects before allowing
	// half-open probes.
	Cooldown time.Duration
	// Successes is the number of consecutive half-open successes that
	// close the circuit again.
	Successes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures < 1 {
		c.Failures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Successes < 1 {
		c.Successes = 2
	}
	return c
}

// Breaker is a closed → open → half-open → closed circuit breaker. It
// is safe for concurrent use; the clock is injectable for tests.
type Breaker struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	now     func() time.Time
	state   BreakerState
	fails   int       // consecutive failures while closed
	succ    int       // consecutive successes while half-open
	until   time.Time // when an open circuit starts probing
	probing bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a request may proceed, transitioning open →
// half-open when the cooldown has elapsed. While half-open, only a
// single probe may be in flight: the first caller takes the probe
// token and the rest are rejected (their queries degrade) until that
// probe's outcome is recorded, so N concurrent queries never hammer a
// barely-recovered source at once.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // open
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.succ = 0
		b.probing = true
		return true
	}
}

// Record feeds the outcome of an allowed request into the state
// machine.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false // the in-flight probe resolved; release the token
		if !ok {
			b.trip()
			return
		}
		b.succ++
		if b.succ >= b.cfg.Successes {
			b.state = BreakerClosed
			b.fails = 0
		}
	default: // open: late results from in-flight probes; ignore
	}
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.until = b.now().Add(b.cfg.Cooldown)
	b.fails = 0
	b.succ = 0
	b.probing = false
}

// State returns the current circuit state (open circuits past their
// cooldown still report open until a request probes them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
