package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/sparql"
)

// --- projectionKey (satellite: unbound vs bound ambiguity) ---

// TestProjectionKeyDistinguishes feeds the key function binding shapes
// that the old Term.String()+"\x00" concatenation could conflate and
// requires pairwise-distinct keys. The last two cases are an actual
// collision under the old scheme: a NUL byte inside an IRI is rendered
// verbatim, so {a: <x>.<y>, b: <z>} and {a: <x>, b: <y>.<z>} (with "."
// standing for NUL) concatenated to identical byte strings, silently
// merging the provenance of distinct solutions.
func TestProjectionKeyDistinguishes(t *testing.T) {
	f := New(rdf.NewDict())
	nulIRI := func(s string) rdf.Term { return rdf.IRI(s) }
	vars := []string{"a", "b"}
	cases := map[string]sparql.Binding{
		"both-unbound":      {},
		"a-empty-literal":   {"a": rdf.Literal("")},
		"b-empty-literal":   {"b": rdf.Literal("")},
		"a-empty-iri":       {"a": rdf.IRI("")},
		"a-literal-b-empty": {"a": rdf.Literal(""), "b": rdf.Literal("")},
		"nul-split-left":    {"a": nulIRI("x>\x00<y"), "b": rdf.IRI("z")},
		"nul-split-right":   {"a": rdf.IRI("x"), "b": nulIRI("y>\x00<z")},
	}
	// Intern every term so keys use the ID encoding.
	for _, b := range cases {
		for _, term := range b {
			f.dict.Intern(term)
		}
	}
	keys := map[string]string{}
	for name, b := range cases {
		keys[name] = f.projectionKey(vars, b)
	}
	for n1, k1 := range keys {
		for n2, k2 := range keys {
			if n1 != n2 && k1 == k2 {
				t.Errorf("projectionKey conflates %s and %s (key %q)", n1, n2, k1)
			}
		}
	}
}

// TestOptionalUnboundProvenanceDistinct is the end-to-end regression:
// an OPTIONAL leaves ?name unbound for one solution and binds it (via
// a sameAs-crossing match carrying provenance) for another. The two
// solutions project onto different keys, so the unbound row must stay
// provenance-free instead of inheriting the other row's link.
func TestOptionalUnboundProvenanceDistinct(t *testing.T) {
	d := rdf.NewDict()
	kb := rdf.NewGraphWithDict(d)
	news := rdf.NewGraphWithDict(d)

	e1 := rdf.IRI("http://kb/e1")
	e2 := rdf.IRI("http://kb/e2")
	n1 := rdf.IRI("http://news/n1")
	kb.Insert(rdf.Triple{S: e1, P: rdf.IRI("http://kb/award"), O: rdf.Literal("A")})
	kb.Insert(rdf.Triple{S: e2, P: rdf.IRI("http://kb/award"), O: rdf.Literal("B")})
	// The empty literal name is reachable only across the sameAs link.
	news.Insert(rdf.Triple{S: n1, P: rdf.IRI("http://news/name"), O: rdf.Literal("")})

	f := New(d)
	if err := f.AddSource("kb", kb); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSource("news", news); err != nil {
		t.Fatal(err)
	}
	e1ID, _ := d.Lookup(e1)
	n1ID, _ := d.Lookup(n1)
	link := links.Link{E1: e1ID, E2: n1ID}
	f.SetLinks(links.NewSet(link))

	res, err := f.Query(`SELECT ?name WHERE {
		?p <http://kb/award> ?a .
		OPTIONAL { ?p <http://news/name> ?name . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	var sawBound, sawUnbound bool
	for _, r := range res.Rows {
		if name, ok := r.Binding["name"]; ok {
			sawBound = true
			if name.Value != "" {
				t.Fatalf("bound name = %q, want empty literal", name.Value)
			}
			if !r.Used.Has(link) {
				t.Error("empty-literal row lost its link provenance")
			}
		} else {
			sawUnbound = true
			if r.Used.Len() != 0 {
				t.Errorf("unbound row inherited provenance %v", r.Used.Slice())
			}
		}
	}
	if !sawBound || !sawUnbound {
		t.Fatalf("expected one bound-empty and one unbound row, got bound=%v unbound=%v", sawBound, sawUnbound)
	}
}

// --- join ordering (tentpole layer 1) ---

// planOrder extracts the computed order of the top-level group.
func planOrder(f *Federator, query string) []int {
	q, err := sparql.Parse(query)
	if err != nil {
		panic(err)
	}
	p := f.planQuery(q)
	return p.order[q.Where]
}

func TestReorderHoistsSelectivePattern(t *testing.T) {
	d := rdf.NewDict()
	g := rdf.NewGraphWithDict(d)
	for i := 0; i < 100; i++ {
		s := rdf.IRI("http://x/e" + string(rune('A'+i%26)) + string(rune('0'+i/26)))
		g.Insert(rdf.Triple{S: s, P: rdf.IRI("http://x/label"), O: rdf.Literal("l")})
	}
	g.Insert(rdf.Triple{S: rdf.IRI("http://x/eA0"), P: rdf.IRI("http://x/rare"), O: rdf.Literal("k")})

	f := New(d)
	if err := f.AddSource("g", g); err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())

	// Written order starts with the unselective label scan; the planner
	// must run the rare pattern first (both bind ?e for the first time,
	// but the rare pattern is written later... it may still go first
	// only if it does not steal ?e's first binding — and it would, so
	// binding safety forces label first. Use a second variable instead.
	order := planOrder(f, `SELECT ?e ?v WHERE {
		?e <http://x/label> ?v .
		?e <http://x/rare> "k" .
	}`)
	// Pattern 1 shares only ?e with pattern 0 and ?e's first binder is
	// pattern 0... but pattern 1 also binds ?e. Binding safety says
	// pattern 1 may not run while pattern 0 is unscheduled. So the
	// order must be the written one here.
	if order[0] != 0 {
		t.Fatalf("order = %v, binding safety requires the written binder of ?e first", order)
	}

	// With ?e pre-bound by a shared selective pattern, the planner is
	// free to order the remaining two by cost: rare (1 match) before
	// label (100 matches), inverting the written order.
	order = planOrder(f, `SELECT ?e ?v WHERE {
		?e <http://x/rare> "k" .
		?e <http://x/label> ?v .
		?e <http://x/rare> ?k2 .
	}`)
	if order[0] != 0 {
		t.Fatalf("order = %v, want rare-constant pattern first", order)
	}
	if order[1] != 2 {
		t.Fatalf("order = %v, want rare ?k2 pattern (1 match) hoisted before label (100 matches)", order)
	}
}

func TestNoReorderKeepsWrittenOrder(t *testing.T) {
	f, _, _ := newsWorld(t)
	f.SetOptions(Options{NoReorder: true})
	order := planOrder(f, `SELECT ?a ?b WHERE {
		?x <http://kb/award> ?a .
		?x <http://kb/name> ?b .
	}`)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("NoReorder order = %v, want [0 1]", order)
	}
}

// TestReorderIsDeterministic plans the same query repeatedly and
// requires identical orders: estimates are map-free arithmetic and
// ties break on written position, so nothing may wobble.
func TestReorderIsDeterministic(t *testing.T) {
	f, _, _ := newsWorld(t)
	q := `SELECT ?p ?name ?article WHERE {
		?p <http://kb/name> ?name .
		?article <http://news/about> ?p .
		?p <http://kb/award> ?a .
	}`
	first := planOrder(f, q)
	for i := 0; i < 20; i++ {
		again := planOrder(f, q)
		if len(again) != len(first) {
			t.Fatalf("order length changed: %v vs %v", first, again)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("order changed across plans: %v vs %v", first, again)
			}
		}
	}
}

// --- source selection × reordering (satellite d) ---

// TestUnboundPredicateVisitsAllSourcesUnderReordering joins an
// unbound-predicate pattern with a selective one. However the planner
// orders them, the unbound-predicate pattern must still visit every
// source, and the rows must match the written-order serial evaluator.
func TestUnboundPredicateVisitsAllSourcesUnderReordering(t *testing.T) {
	f, _ := chainWorld(t)
	query := `SELECT ?p ?rel ?v WHERE {
		?p ?rel ?v .
		?p <http://b/label> "Aspirin" .
	}`
	ref, err := withOptions(f, legacyOptions).Query(query)
	if err != nil {
		t.Fatal(err)
	}
	// The entity participates in all three sources via the link chain:
	// the unbound-predicate scan must surface a row from each.
	preds := map[string]bool{}
	for _, r := range ref.Rows {
		preds[r.Binding["rel"].Value] = true
	}
	for _, want := range []string{"http://a/name", "http://b/label", "http://c/price"} {
		if !preds[want] {
			t.Fatalf("legacy rows missing predicate %s: %v", want, preds)
		}
	}
	for _, o := range evalConfigs() {
		got, err := withOptions(f, o).Query(query)
		if err != nil {
			t.Fatalf("%s: %v", optionsLabel(o), err)
		}
		if canonicalResult(got) != canonicalResult(ref) {
			t.Errorf("%s returned different rows for unbound-predicate join", optionsLabel(o))
		}
	}
}

// TestDegradedOrderIndependent opens a guarded source's breaker and
// checks that the Degraded report is identical whichever join order or
// worker count evaluates the query — availability is decided from the
// plan's probe set before evaluation, not during it.
func TestDegradedOrderIndependent(t *testing.T) {
	d := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(d)
	g2 := rdf.NewGraphWithDict(d)
	g1.Insert(rdf.Triple{S: rdf.IRI("http://a/s"), P: rdf.IRI("http://x/p"), O: rdf.Literal("v")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://b/s"), P: rdf.IRI("http://x/p"), O: rdf.Literal("w")})

	f := New(d)
	f.SetResilience(Resilience{
		SourceTimeout: 20 * time.Millisecond,
		Retries:       0,
		BackoffBase:   time.Millisecond,
		BackoffMax:    time.Millisecond,
		Breaker:       BreakerConfig{Failures: 1, Cooldown: time.Hour, Successes: 1},
	})
	if err := f.AddSource("up", g1); err != nil {
		t.Fatal(err)
	}
	err := f.Add(Source{Name: "down", Graph: g2, Access: func(context.Context) error {
		return errors.New("refused")
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())

	// Trip the breaker so its open state, not probe timing, decides.
	if _, err := f.Query(`SELECT ?s WHERE { ?s <http://x/p> ?o . }`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		// Selective pattern written last: reordering changes which
		// pattern touches the degraded source first.
		`SELECT ?s ?o WHERE { ?s <http://x/p> ?o . ?s ?any ?o . }`,
		// A query whose row stream dries up immediately: upfront
		// probing must still report the degraded source.
		`SELECT ?s WHERE { ?s <http://x/p> "no-such-value" . }`,
	}
	for _, q := range queries {
		for _, o := range append(evalConfigs(), legacyOptions) {
			rs, err := withOptions(f, o).Query(q)
			if err != nil {
				t.Fatalf("%s: %v", optionsLabel(o), err)
			}
			if len(rs.Degraded) != 1 || rs.Degraded[0] != "down" {
				t.Errorf("%s on %q: Degraded = %v, want [down]", optionsLabel(o), q, rs.Degraded)
			}
		}
	}
}

// TestProbeSetSparesUnreachableSources: a query whose predicates never
// select the guarded source must not probe it at all — no Access
// calls, no Degraded marker — even though the source is down.
func TestProbeSetSparesUnreachableSources(t *testing.T) {
	d := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(d)
	g2 := rdf.NewGraphWithDict(d)
	g1.Insert(rdf.Triple{S: rdf.IRI("http://a/s"), P: rdf.IRI("http://only1/p"), O: rdf.Literal("v")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://b/s"), P: rdf.IRI("http://only2/p"), O: rdf.Literal("w")})

	f := New(d)
	if err := f.AddSource("up", g1); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := f.Add(Source{Name: "down", Graph: g2, Access: func(context.Context) error {
		calls++
		return errors.New("refused")
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())

	rs, err := f.Query(`SELECT ?s WHERE { ?s <http://only1/p> ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("query over ds1-only predicate probed the guarded source %d times", calls)
	}
	if len(rs.Degraded) != 0 {
		t.Fatalf("Degraded = %v, want none for an untouched source", rs.Degraded)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
}

// --- LinkCount (satellite b) ---

func TestLinkCountO1AcrossSnapshots(t *testing.T) {
	f, _, _ := newsWorld(t)
	if f.LinkCount() != 1 {
		t.Fatalf("LinkCount = %d, want 1", f.LinkCount())
	}
	big := links.NewSet()
	for i := 0; i < 100; i++ {
		big.Add(links.Link{E1: rdf.ID(1000 + i), E2: rdf.ID(2000 + i)})
	}
	snap := f.WithLinks(big)
	if snap.LinkCount() != 100 {
		t.Fatalf("snapshot LinkCount = %d, want 100", snap.LinkCount())
	}
	if f.LinkCount() != 1 {
		t.Fatalf("base LinkCount changed to %d", f.LinkCount())
	}
	f.SetLinks(links.NewSet())
	if f.LinkCount() != 0 {
		t.Fatalf("LinkCount after clearing = %d, want 0", f.LinkCount())
	}
}
