// Runtime cardinality observation for adaptive query execution. Layer
// 1 of the adaptive read path (see adaptive.go): every executed
// pattern stage records how many rows went in and how many came out,
// and every source probe records its latency. Counters are plain
// atomics — two adds per stage execution, measured at the chunk
// fan-out boundary rather than per emitted row, so observation cost is
// independent of result size. A query's RuntimeStats are folded into
// the plan's obsTable when evaluation ends, which is how the plan
// cache learns real cardinalities across requests.
package federation

import (
	"sync"
	"sync/atomic"
	"time"
)

// stageObs is one stage's cumulative observation: input rows, emitted
// rows, and how many executions contributed. Always address a stageObs
// through a pointer or index — it embeds atomics and must not be
// copied.
type stageObs struct {
	in   atomic.Uint64
	out  atomic.Uint64
	runs atomic.Uint64
}

// expansion returns the observed per-input-row output multiplier, or
// ok=false when the stage has never run with a non-empty input (an
// empty input observes nothing about selectivity).
func (s *stageObs) expansion() (perRow float64, ok bool) {
	in := s.in.Load()
	if s.runs.Load() == 0 || in == 0 {
		return 0, false
	}
	return float64(s.out.Load()) / float64(in), true
}

// RuntimeStats collects the observations of one query evaluation:
// per-stage row counters (indexed by the plan's stage ids) and
// per-source probe latencies. Safe for concurrent use — per-row
// OPTIONAL sub-evaluations running on different workers record into
// the same table.
type RuntimeStats struct {
	stages  []stageObs
	probeNs []atomic.Int64
}

func newRuntimeStats(nstages, nsources int) *RuntimeStats {
	return &RuntimeStats{
		stages:  make([]stageObs, nstages),
		probeNs: make([]atomic.Int64, nsources),
	}
}

// record notes one execution of a stage: in rows entered, out rows
// were emitted.
func (rs *RuntimeStats) record(stage, in, out int) {
	s := &rs.stages[stage]
	s.in.Add(uint64(in))
	s.out.Add(uint64(out))
	s.runs.Add(1)
}

// recordProbe notes the observed availability-probe latency of source
// si, the stand-in for a remote endpoint's round-trip time.
func (rs *RuntimeStats) recordProbe(si int, d time.Duration) {
	rs.probeNs[si].Store(int64(d))
}

// probeMillis returns the probe latency of source si in whole
// milliseconds. Quantizing to milliseconds keeps local in-memory
// probes (microseconds) at exactly zero, so latency weighting cannot
// perturb plans on all-local federations.
func (rs *RuntimeStats) probeMillis(si int) int64 {
	return rs.probeNs[si].Load() / int64(time.Millisecond)
}

// foldInto merges this query's stage observations into the plan's
// learned table. Stages that never ran contribute nothing.
func (rs *RuntimeStats) foldInto(o *obsTable) {
	if o == nil {
		return
	}
	for i := range rs.stages {
		s := &rs.stages[i]
		runs := s.runs.Load()
		if runs == 0 {
			continue
		}
		t := &o.stages[i]
		t.in.Add(s.in.Load())
		t.out.Add(s.out.Load())
		t.runs.Add(runs)
	}
}

// Link-set drift tolerance of a learned table: observations are
// invalidated when the installed link count moved by more than
// 1/staleLinkDiv of the count they were learned under, plus
// staleLinkSlack links of absolute headroom so small link sets are not
// perpetually stale while ALEX's episodes churn a handful of links.
const (
	staleLinkDiv   = 8
	staleLinkSlack = 8
)

// obsTable is the learned cardinality store attached to a plan. It
// outlives individual queries via the plan cache; adaptive executions
// fold their RuntimeStats in and later executions rank patterns by
// what earlier ones observed. links remembers the sameAs link count
// the observations were learned under (-1 before the first
// validation): cardinalities across sources depend on the link set, so
// when ALEX's episodes move the count far enough the table resets and
// bumps its epoch rather than steering plans with stale stats.
type obsTable struct {
	mu     sync.Mutex
	links  int
	epoch  uint64
	stages []stageObs
}

func newObsTable(nstages int) *obsTable {
	return &obsTable{links: -1, stages: make([]stageObs, nstages)}
}

// validate checks the table against the current link count, resetting
// it (and bumping the epoch) when the observations are stale. It
// reports whether the table holds usable observations afterwards.
func (o *obsTable) validate(linkCount int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.links < 0 {
		o.links = linkCount
		return o.hasDataLocked()
	}
	d := linkCount - o.links
	if d < 0 {
		d = -d
	}
	if d > o.links/staleLinkDiv+staleLinkSlack {
		for i := range o.stages {
			s := &o.stages[i]
			s.in.Store(0)
			s.out.Store(0)
			s.runs.Store(0)
		}
		o.links = linkCount
		o.epoch++
		return false
	}
	return o.hasDataLocked()
}

func (o *obsTable) hasDataLocked() bool {
	for i := range o.stages {
		if o.stages[i].runs.Load() > 0 {
			return true
		}
	}
	return false
}

// Epoch returns the observation epoch: it increments every time the
// table is invalidated by link-set drift.
func (o *obsTable) Epoch() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// expansion returns the learned per-row multiplier of a stage. Reads
// are lock-free atomics: a concurrent reset can hand a ranking mixed
// counters, which may pick a slower (never a wrong) order — any
// binding-safe order is answer-identical.
func (o *obsTable) expansion(stage int) (float64, bool) {
	return o.stages[stage].expansion()
}

// adaptiveMetrics are process-lifetime adaptive-execution counters,
// shared by a base Federator and all its WithLinks snapshots (like
// guards) so /metrics sees one monotone series across snapshot
// publications.
type adaptiveMetrics struct {
	replans     atomic.Uint64
	learnedHits atomic.Uint64
}

// AdaptiveStats returns the cumulative count of mid-query re-rankings
// and of queries that started with usable learned cardinalities.
func (f *Federator) AdaptiveStats() (replans, learnedHits uint64) {
	if f.ametrics == nil {
		return 0, 0
	}
	return f.ametrics.replans.Load(), f.ametrics.learnedHits.Load()
}
