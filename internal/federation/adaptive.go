// Adaptive execution: mid-query re-planning at chunk boundaries.
// Layer 2 of the adaptive read path. The static planner (plan.go)
// orders a group's patterns once, from CountMatch estimates; when an
// estimate is wrong — correlated patterns, skewed fan-out — the whole
// query pays for it. With Options.ReplanEvery > 0 the evaluator
// instead re-ranks the *remaining* unexecuted patterns after every
// ReplanEvery executed stages, using what this query (and, through the
// plan's obsTable, earlier queries) actually observed.
//
// Re-planning never moves the answer: candidate orders are constrained
// by the same binding-safety rule as the static planner (a pattern may
// not steal a variable's first binding from an earlier-written
// pattern), and any binding-safe order is answer-identical — that is
// the PR-5 invariant the 32-config equivalence harness enforces. Ties
// still break toward written order, so the chosen order is a pure
// function of the query and the observation sequence. This is why
// re-planning happens at chunk (stage) boundaries rather than per
// tuple as in ADQUEX: routing individual tuples through different
// operator orders would make provenance and row production
// order-dependent on scheduling; see DESIGN.md decision 15.
package federation

import (
	"alex/internal/sparql"
)

// latencyWeightMillis scales observed per-source probe latency into a
// cost multiplier: a pattern whose candidate sources took
// latencyWeightMillis to probe doubles its estimated cost. Local
// in-memory sources probe in microseconds, which quantizes to zero and
// leaves their costs untouched.
const latencyWeightMillis = 100

// evalTriplesAdaptive runs one group's triple patterns in an
// adaptively re-ranked order, recording per-stage observations as it
// goes. It replaces the static `for _, ti := range p.order[grp]` loop
// when Options.adaptive() is set.
func (f *Federator) evalTriplesAdaptive(ec *evalCtx, p *plan, grp *sparql.GroupGraphPattern, rows []irow, workers int) []irow {
	tps := grp.Triples
	stageIDs := p.stageOf[grp]
	bound := copyBound(p.baseBound[grp])
	scheduled := make([]bool, len(tps))
	var executed []int
	var ranked []int
	pos := 0
	for done := 0; done < len(tps); done++ {
		if ranked == nil || pos >= len(ranked) || done%f.opts.ReplanEvery == 0 {
			ranked = f.rankRemaining(ec, p, grp, len(rows), bound, scheduled)
			pos = 0
			if done > 0 && f.ametrics != nil {
				f.ametrics.replans.Add(1)
			}
		}
		ti := ranked[pos]
		pos++
		tp := tps[ti]
		in := len(rows)
		rows = mapRows(workers, rows, func(r irow, emit func(irow)) {
			f.matchPattern(ec, tp, r, emit)
		})
		ec.stats.record(stageIDs[ti], in, len(rows))
		scheduled[ti] = true
		for _, v := range tp.Vars() {
			bound[v] = true
		}
		if f.traceExec != nil {
			executed = append(executed, ti)
		}
		if len(rows) == 0 {
			break
		}
	}
	if f.traceExec != nil {
		f.traceExec(grp, executed)
	}
	return rows
}

// rankRemaining produces a complete binding-safe order over the
// not-yet-scheduled patterns, greedily picking the cheapest next
// pattern under the current observations. It mirrors orderTriples
// exactly — same schedulability constraint, same written-order
// tie-break — so with no observations the ranking reproduces the
// static plan, and with identical observation sequences it is
// deterministic. The returned order stays valid as its prefix
// executes: each entry was chosen schedulable given the ones before
// it.
func (f *Federator) rankRemaining(ec *evalCtx, p *plan, grp *sparql.GroupGraphPattern, nrows int, bound map[string]bool, scheduled []bool) []int {
	tps := grp.Triples
	bound = copyBound(bound)
	sched := append([]bool(nil), scheduled...)
	var order []int
	for {
		best, bestCost := -1, 0.0
		for i := range tps {
			if sched[i] || !f.schedulable(tps, sched, i, bound) {
				continue
			}
			cost := f.adaptiveCost(ec, p, grp, i, nrows, bound)
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best == -1 {
			break
		}
		order = append(order, best)
		sched[best] = true
		for _, v := range tps[best].Vars() {
			bound[v] = true
		}
	}
	return order
}

// adaptiveCost estimates what executing pattern i next would cost, in
// rows. Preference order: this query's own observation of the stage
// (only available when the group re-runs per row, e.g. under
// OPTIONAL), then the plan's learned table from earlier queries, then
// the static CountMatch estimate — so the first query under a cold
// plan ranks exactly like the static planner. Observed expansions are
// per-input-row and scale with the live row count, which is the whole
// point: a stage that looked cheap statically but fanned out 8× per
// row is re-costed against reality. Slow sources surcharge every
// pattern that must touch them, by observed probe latency.
func (f *Federator) adaptiveCost(ec *evalCtx, p *plan, grp *sparql.GroupGraphPattern, i, nrows int, bound map[string]bool) float64 {
	sid := p.stageOf[grp][i]
	tp := grp.Triples[i]
	var cost float64
	if per, ok := ec.stats.stages[sid].expansion(); ok {
		cost = float64(nrows) * per
	} else if per, ok := ec.learnedExpansion(sid); ok {
		cost = float64(nrows) * per
	} else {
		cost = float64(f.estimatePattern(tp, bound))
	}
	var maxMs int64
	for _, si := range f.candidateSources(tp) {
		if ms := ec.stats.probeMillis(si); ms > maxMs {
			maxMs = ms
		}
	}
	if maxMs > 0 {
		cost *= 1 + float64(maxMs)/latencyWeightMillis
	}
	return cost
}
