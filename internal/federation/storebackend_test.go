package federation

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
	"alex/internal/synth"
)

// The cross-backend harness is the tentpole proof obligation of the
// segment store: a federator whose sources are mmap'd immutable
// segments must be indistinguishable from one over in-memory
// rdf.Graphs — identical answer rows, provenance, Degraded lists,
// CountMatch statistics (the planner's input) and executed join orders
// (the planner's output) — on every world, at more than one worker
// count, including adaptive re-planning runs. The disk twin is built
// by persisting the mem federator's triples, then cold-starting from
// the manifest, so the comparison also covers the write → compact →
// checkpoint → mmap-open cycle, not just the in-process Segmented.

// installedLinks reconstructs the link set a federator is running
// with from its sameAs edge index (each edge carries the canonical
// link).
func installedLinks(f *Federator) links.Set {
	ls := links.NewSet()
	for _, edges := range f.same {
		for _, e := range edges {
			ls.Add(e.link)
		}
	}
	return ls
}

// diskTwin persists every source of f into a fresh segment store,
// cold-starts the store from disk, and returns a federator over the
// reopened (mmap-backed) sources with the same links installed.
func diskTwin(t *testing.T, f *Federator) *Federator {
	t.Helper()
	dir := t.TempDir()
	set, err := store.Create(dir, f.dict, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range f.sources {
		seg, err := set.AddSource(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		src.Graph.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
			seg.InsertIDs(s, p, o)
			return true
		})
	}
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("cold start: %v", err)
	}
	t.Cleanup(func() { re.Close() }) //nolint:errcheck // read-only teardown

	fd := New(re.Dict())
	for i, src := range f.sources {
		seg := re.Source(fmt.Sprintf("s%d", i))
		if seg == nil {
			t.Fatalf("cold start lost source %d", i)
		}
		// Keep the mem federator's source names so Degraded lists and
		// source-selection behave identically.
		if err := fd.Add(Source{Name: src.Name, Graph: seg}); err != nil {
			t.Fatal(err)
		}
	}
	fd.SetLinks(installedLinks(f))
	return fd
}

// assertCountMatchEqual compares the two backends on the planner's
// entire statistics surface: CountMatch for all eight bound-position
// masks over a probe grid, plus the posting enumerations.
func assertCountMatchEqual(t *testing.T, mem, disk store.TripleStore) {
	t.Helper()
	if mem.Size() != disk.Size() {
		t.Fatalf("size: mem %d disk %d", mem.Size(), disk.Size())
	}
	maxID := rdf.ID(mem.Dict().Len())
	step := maxID/64 + 1
	for mask := 0; mask < 8; mask++ {
		haveS, haveP, haveO := mask&1 != 0, mask&2 != 0, mask&4 != 0
		for probe := rdf.ID(0); probe <= maxID+1; probe += step {
			s, p, o := probe, probe/2+1, maxID-probe
			if m, d := mem.CountMatch(s, p, o, haveS, haveP, haveO), disk.CountMatch(s, p, o, haveS, haveP, haveO); m != d {
				t.Fatalf("CountMatch mask=%03b (%d,%d,%d): mem %d disk %d", mask, s, p, o, m, d)
			}
		}
	}
	if m, d := fmt.Sprint(mem.SubjectIDs()), fmt.Sprint(disk.SubjectIDs()); m != d {
		t.Fatalf("SubjectIDs diverge:\nmem  %s\ndisk %s", m, d)
	}
	if m, d := fmt.Sprint(mem.PredicateIDs()), fmt.Sprint(disk.PredicateIDs()); m != d {
		t.Fatalf("PredicateIDs diverge:\nmem  %s\ndisk %s", m, d)
	}
}

// backendWorkerConfigs is the option matrix the cross-backend harness
// runs under: ≥2 worker counts, with reordering on, plus an adaptive
// configuration (which must converge to the same learned orders on
// both backends because it learns from identical cardinalities).
var backendWorkerConfigs = []Options{
	{Workers: 1},
	{Workers: 4},
	{Workers: 4, ReplanEvery: 1},
}

// assertBackendsMatch is the harness core: for each option config and
// query, the mem and disk federators must produce canonically equal
// results and identical executed join orders.
func assertBackendsMatch(t *testing.T, fmem *Federator, queries map[string]string) {
	t.Helper()
	fdisk := diskTwin(t, fmem)
	for i := range fmem.sources {
		assertCountMatchEqual(t, fmem.sources[i].Graph, fdisk.sources[i].Graph)
	}
	for _, o := range backendWorkerConfigs {
		o := o
		t.Run(optionsLabel(o), func(t *testing.T) {
			for name, q := range queries {
				fm := withOptions(fmem, o)
				fd := withOptions(fdisk, o)
				if o.ReplanEvery > 0 {
					// Fresh caches so both backends learn from scratch.
					fm.SetPlanCache(NewPlanCache(16))
					fd.SetPlanCache(NewPlanCache(16))
				}
				// The trace hook fires from worker goroutines at Workers>1.
				var traceMu sync.Mutex
				var memOrders, diskOrders []string
				fm.SetExecTrace(func(_ *sparql.GroupGraphPattern, order []int) {
					traceMu.Lock()
					memOrders = append(memOrders, fmt.Sprint(order))
					traceMu.Unlock()
				})
				fd.SetExecTrace(func(_ *sparql.GroupGraphPattern, order []int) {
					traceMu.Lock()
					diskOrders = append(diskOrders, fmt.Sprint(order))
					traceMu.Unlock()
				})
				runs := 1
				if o.ReplanEvery > 0 {
					runs = 3 // cold, learned, refined
				}
				for r := 0; r < runs; r++ {
					memOrders, diskOrders = nil, nil
					rm, err := fm.Query(q)
					if err != nil {
						t.Fatalf("%s (mem) run %d: %v", name, r, err)
					}
					rd, err := fd.Query(q)
					if err != nil {
						t.Fatalf("%s (disk) run %d: %v", name, r, err)
					}
					if cm, cd := canonicalResult(rm), canonicalResult(rd); cm != cd {
						t.Fatalf("%s run %d: backends diverge\n--- mem ---\n%s--- disk ---\n%s", name, r, cm, cd)
					}
					sort.Strings(memOrders)
					sort.Strings(diskOrders)
					if fmt.Sprint(memOrders) != fmt.Sprint(diskOrders) {
						t.Fatalf("%s run %d: executed join orders diverge\nmem  %v\ndisk %v", name, r, memOrders, diskOrders)
					}
				}
			}
		})
	}
}

func TestStoreBackendNewsWorld(t *testing.T) {
	f, _, _ := newsWorld(t)
	assertBackendsMatch(t, f, newsQueries())
}

func TestStoreBackendChainWorld(t *testing.T) {
	f, _ := chainWorld(t)
	assertBackendsMatch(t, f, map[string]string{
		"multi-hop": `SELECT ?name ?price WHERE {
			?p <http://b/label> "Aspirin" .
			?p <http://a/name> ?name .
			?p <http://c/price> ?price .
		}`,
		"optional-cross-source": `SELECT ?p ?name ?price WHERE {
			?p <http://b/label> "Aspirin" .
			OPTIONAL { ?p <http://a/name> ?name . }
			OPTIONAL { ?p <http://c/price> ?price . }
		}`,
		"scan-all": `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
	})
}

// TestStoreBackendSynthProfiles runs the backend harness over
// down-scaled synth dataset pairs — every built-in profile in short
// mode's subset, all of them otherwise — with ground-truth links
// installed, covering dense sameAs fan-out, skewed cardinalities and
// multi-segment stores.
func TestStoreBackendSynthProfiles(t *testing.T) {
	names := []string{}
	for _, p := range synth.Profiles() {
		names = append(names, p.Name)
	}
	if testing.Short() {
		names = []string{"dbpedia-nytimes", "skewed-hub"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := synth.ProfileByName(name)
			if !ok {
				t.Fatalf("unknown profile %q", name)
			}
			ds := synth.Generate(prof.Scale(0.1))
			f := New(ds.Dict)
			if err := f.AddSource("ds1", ds.G1); err != nil {
				t.Fatal(err)
			}
			if err := f.AddSource("ds2", ds.G2); err != nil {
				t.Fatal(err)
			}
			f.SetLinks(ds.GroundTruth)
			assertBackendsMatch(t, f, map[string]string{
				"cross-source-join": `SELECT ?e ?n ?g WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					?e <http://ds2.example.org/prop/group> ?g .
				}`,
				"selective-category": `SELECT ?e ?n WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					?e <http://ds1.example.org/onto/category> ?c .
					?e <http://ds2.example.org/prop/group> ?c .
				}`,
				"optional-cross": `SELECT ?e ?n ?b WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					OPTIONAL { ?e <http://ds2.example.org/prop/born> ?b . }
				}`,
				"count-per-group": `SELECT ?g (COUNT(?e) AS ?n) WHERE {
					?e <http://ds1.example.org/onto/type> ?ty .
					?e <http://ds2.example.org/prop/group> ?g .
				} GROUP BY ?g`,
			})
		})
	}
}
