package federation

import "alex/internal/links"

// prov carries the provenance of one intermediate row: the sameAs
// links its derivation has used so far. It exists as an interface so
// the evaluator can run with either representation — the legacy
// mutable-Set-per-row cloning (cloneProv) or the copy-on-write
// persistent chain (cowProv) — and the equivalence harness can prove
// both produce identical answers. Implementations are immutable from
// the evaluator's point of view: extend returns a new value and never
// changes the receiver's observable contents.
type prov interface {
	// extend returns the provenance grown by ls.
	extend(ls []links.Link) prov
	// set materializes the provenance as a freshly owned mutable Set.
	set() links.Set
}

// cowProv is the fast path: an immutable links.Frozen chain with
// structural sharing. Extending is O(len(ls)); nothing is copied until
// a row is emitted and set() materializes the chain.
type cowProv struct{ f *links.Frozen }

func (p cowProv) extend(ls []links.Link) prov {
	nf := p.f.With(ls...)
	if nf == p.f {
		return p
	}
	return cowProv{f: nf}
}

func (p cowProv) set() links.Set { return p.f.Set() }

// cloneProv reproduces the pre-PR-5 behavior byte for byte: every
// extension clones the full mutable Set, costing O(|set|) per
// intermediate row. Kept as the equivalence baseline and the serial
// row of BenchmarkFederatedQuery.
type cloneProv struct{ s links.Set }

func (p cloneProv) extend(ls []links.Link) prov {
	ns := p.s.Clone()
	for _, l := range ls {
		ns.Add(l)
	}
	return cloneProv{s: ns}
}

func (p cloneProv) set() links.Set { return p.s.Clone() }
