package federation

import (
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
)

// newsWorld builds the paper's motivating scenario (§1): a knowledge
// base with facts about people, and a news archive with articles about
// (its own IRIs for) the same people, joined by sameAs links.
func newsWorld(t *testing.T) (*Federator, *rdf.Dict, links.Link) {
	t.Helper()
	d := rdf.NewDict()
	kb := rdf.NewGraphWithDict(d)
	news := rdf.NewGraphWithDict(d)

	lebronKB := rdf.IRI("http://kb/LeBron_James")
	kb.Insert(rdf.Triple{S: lebronKB, P: rdf.IRI("http://kb/award"), O: rdf.Literal("NBA MVP 2013")})
	kb.Insert(rdf.Triple{S: lebronKB, P: rdf.IRI("http://kb/name"), O: rdf.Literal("LeBron James")})
	duncanKB := rdf.IRI("http://kb/Tim_Duncan")
	kb.Insert(rdf.Triple{S: duncanKB, P: rdf.IRI("http://kb/award"), O: rdf.Literal("NBA MVP 2003")})

	lebronNews := rdf.IRI("http://news/people/lebron-james")
	news.Insert(rdf.Triple{S: rdf.IRI("http://news/a1"), P: rdf.IRI("http://news/about"), O: lebronNews})
	news.Insert(rdf.Triple{S: rdf.IRI("http://news/a2"), P: rdf.IRI("http://news/about"), O: lebronNews})
	news.Insert(rdf.Triple{S: rdf.IRI("http://news/a3"), P: rdf.IRI("http://news/about"), O: rdf.IRI("http://news/people/someone-else")})

	f := New(d)
	if err := f.AddSource("kb", kb); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSource("news", news); err != nil {
		t.Fatal(err)
	}
	kbID, _ := d.Lookup(lebronKB)
	newsID, _ := d.Lookup(lebronNews)
	link := links.Link{E1: kbID, E2: newsID}
	f.SetLinks(links.NewSet(link))
	return f, d, link
}

func TestFederatedJoinAcrossSameAs(t *testing.T) {
	f, _, link := newsWorld(t)
	res, err := f.Query(`SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 articles", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Used.Has(link) {
			t.Fatalf("row %v missing link provenance", r.Binding)
		}
	}
}

func TestSingleSourceAnswerHasNoProvenance(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2013" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Used.Len() != 0 {
		t.Fatalf("single-source answer recorded %d links", res.Rows[0].Used.Len())
	}
}

func TestNoLinksNoJoin(t *testing.T) {
	f, _, _ := newsWorld(t)
	f.SetLinks(links.NewSet()) // drop all links
	res, err := f.Query(`SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 without links", len(res.Rows))
	}
}

func TestLinkCount(t *testing.T) {
	f, _, _ := newsWorld(t)
	if f.LinkCount() != 1 {
		t.Fatalf("LinkCount = %d", f.LinkCount())
	}
}

type sinkRecorder struct {
	got map[links.Link]bool
}

func (s *sinkRecorder) Feedback(l links.Link, positive bool) {
	if s.got == nil {
		s.got = map[links.Link]bool{}
	}
	s.got[l] = positive
}

func TestApproveRejectRouteToLinks(t *testing.T) {
	f, _, link := newsWorld(t)
	res, err := f.Query(`SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	var sink sinkRecorder
	Approve(res.Rows[0], &sink)
	if v, ok := sink.got[link]; !ok || !v {
		t.Fatalf("approve did not reach the link: %+v", sink.got)
	}
	Reject(res.Rows[1], &sink)
	if v := sink.got[link]; v {
		t.Fatalf("reject did not flip the link feedback")
	}
}

// chainWorld builds a three-source chain: a drug catalogue (A), a label
// registry (B) and a price list (C), with each source using its own IRI
// for the same drug. The links form a chain a1 <-> b1 <-> c1, so an
// answer that combines all three sources traverses two distinct sameAs
// links.
func chainWorld(t *testing.T) (f *Federator, chain [2]links.Link) {
	t.Helper()
	d := rdf.NewDict()
	a := rdf.NewGraphWithDict(d)
	b := rdf.NewGraphWithDict(d)
	c := rdf.NewGraphWithDict(d)

	a1 := rdf.IRI("http://a/drug/1")
	b1 := rdf.IRI("http://b/substance/one")
	c1 := rdf.IRI("http://c/product/0001")
	a.Insert(rdf.Triple{S: a1, P: rdf.IRI("http://a/name"), O: rdf.Literal("acetylsalicylic acid")})
	b.Insert(rdf.Triple{S: b1, P: rdf.IRI("http://b/label"), O: rdf.Literal("Aspirin")})
	c.Insert(rdf.Triple{S: c1, P: rdf.IRI("http://c/price"), O: rdf.Literal("5")})
	// A decoy in C that must not join.
	c.Insert(rdf.Triple{S: rdf.IRI("http://c/product/0002"), P: rdf.IRI("http://c/price"), O: rdf.Literal("9")})

	f = New(d)
	for _, src := range []struct {
		name string
		g    *rdf.Graph
	}{{"a", a}, {"b", b}, {"c", c}} {
		if err := f.AddSource(src.name, src.g); err != nil {
			t.Fatal(err)
		}
	}
	aID, _ := d.Lookup(a1)
	bID, _ := d.Lookup(b1)
	cID, _ := d.Lookup(c1)
	chain[0] = links.Link{E1: aID, E2: bID}
	chain[1] = links.Link{E1: bID, E2: cID}
	f.SetLinks(links.NewSet(chain[0], chain[1]))
	return f, chain
}

func TestMultiHopJoinUsesEveryChainLink(t *testing.T) {
	f, chain := chainWorld(t)
	res, err := f.Query(`SELECT ?name ?price WHERE {
		?p <http://b/label> "Aspirin" .
		?p <http://a/name> ?name .
		?p <http://c/price> ?price .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if got := row.Binding["price"]; got != rdf.Literal("5") {
		t.Fatalf("price = %v, decoy joined?", got)
	}
	if row.Used.Len() != 2 {
		t.Fatalf("row used %d links, want both chain links", row.Used.Len())
	}
	for i, l := range chain {
		if !row.Used.Has(l) {
			t.Fatalf("provenance missing chain link %d (%v)", i, l)
		}
	}
}

func TestMultiHopFeedbackReachesEveryLink(t *testing.T) {
	f, chain := chainWorld(t)
	res, err := f.Query(`SELECT ?name ?price WHERE {
		?p <http://b/label> "Aspirin" .
		?p <http://a/name> ?name .
		?p <http://c/price> ?price .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	var approved sinkRecorder
	Approve(res.Rows[0], &approved)
	if len(approved.got) != 2 {
		t.Fatalf("approve reached %d links, want 2: %+v", len(approved.got), approved.got)
	}
	for i, l := range chain {
		if v, ok := approved.got[l]; !ok || !v {
			t.Fatalf("approve skipped chain link %d", i)
		}
	}
	var rejected sinkRecorder
	Reject(res.Rows[0], &rejected)
	if len(rejected.got) != 2 {
		t.Fatalf("reject reached %d links, want 2: %+v", len(rejected.got), rejected.got)
	}
	for i, l := range chain {
		if v, ok := rejected.got[l]; !ok || v {
			t.Fatalf("reject skipped chain link %d", i)
		}
	}
}

func TestWithLinksSnapshotIndependence(t *testing.T) {
	f, chain := chainWorld(t)
	snap := f.WithLinks(links.NewSet(chain[0], chain[1]))
	// Mutating the original must not affect the snapshot.
	f.SetLinks(links.NewSet())
	if snap.LinkCount() != 2 {
		t.Fatalf("snapshot LinkCount = %d after SetLinks on origin", snap.LinkCount())
	}
	res, err := snap.Query(`SELECT ?price WHERE {
		?p <http://b/label> "Aspirin" .
		?p <http://c/price> ?price .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("snapshot rows = %d, want 1", len(res.Rows))
	}
}

func TestAddSourceRejectsForeignDict(t *testing.T) {
	f, _, _ := newsWorld(t)
	other := rdf.NewGraph()
	if err := f.AddSource("bad", other); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
}

func TestQueryNoSources(t *testing.T) {
	f := New(rdf.NewDict())
	if _, err := f.Query(`SELECT ?x WHERE { ?x <http://p> ?y . }`); err == nil {
		t.Fatal("query over empty federation succeeded")
	}
}

func TestFederatedFilterAndModifiers(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT ?award WHERE {
		?p <http://kb/award> ?award .
		FILTER(CONTAINS(?award, "MVP"))
	} ORDER BY ?award LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0].Binding["award"]; got != rdf.Literal("NBA MVP 2003") {
		t.Fatalf("order/limit wrong: %v", got)
	}
}

func TestFederatedOptionalKeepsRow(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT ?p ?article WHERE {
		?p <http://kb/award> ?a .
		OPTIONAL { ?article <http://news/about> ?p . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// LeBron matches 2 articles (via link); Duncan has none but stays.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestFederatedUnion(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT ?p WHERE {
		{ ?p <http://kb/award> "NBA MVP 2013" . } UNION { ?p <http://kb/award> "NBA MVP 2003" . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestDistinctMergesProvenance(t *testing.T) {
	f, _, link := newsWorld(t)
	// DISTINCT ?p collapses the two article rows into one; provenance
	// of the collapsed row must still contain the link.
	res, err := f.Query(`SELECT DISTINCT ?p WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Rows[0].Used.Has(link) {
		t.Fatal("provenance lost through DISTINCT")
	}
}

func TestSourceSelection(t *testing.T) {
	f, _, _ := newsWorld(t)
	// kb/award exists only in the kb source.
	awardID, ok := func() (rdf.ID, bool) {
		return f.Sources()[0].Graph.Dict().Lookup(rdf.IRI("http://kb/award"))
	}()
	if !ok {
		t.Fatal("award predicate missing")
	}
	srcs := f.predSources[awardID]
	if len(srcs) != 1 || srcs[0] != 0 {
		t.Fatalf("source selection for kb/award = %v, want [0]", srcs)
	}
	// Unknown predicate: zero sources, so the query returns nothing
	// rather than scanning everything.
	res, err := f.Query(`SELECT ?x WHERE { ?x <http://never/seen> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFederatedAsk(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`ASK {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Fatal("federated ASK = false, want true")
	}
	f.SetLinks(links.NewSet())
	res, err = f.Query(`ASK {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ask {
		t.Fatal("federated ASK without links = true, want false")
	}
}

func TestFederatedAggregate(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT (COUNT(?article) AS ?n) WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Binding["n"].Value != "2" {
		t.Fatalf("count = %+v", res.Rows)
	}
	// The aggregate answer carries the union of contributing links.
	if res.Rows[0].Used.Len() != 1 {
		t.Fatalf("aggregate provenance = %d links, want 1", res.Rows[0].Used.Len())
	}
}

func TestResultSetString(t *testing.T) {
	f, _, _ := newsWorld(t)
	res, err := f.Query(`SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty String()")
	}
}
