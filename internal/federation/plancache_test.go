package federation

import (
	"fmt"
	"sync"
	"testing"

	"alex/internal/links"
)

func TestPlanCacheHitMissCounters(t *testing.T) {
	f, _, _ := newsWorld(t)
	pc := NewPlanCache(8)
	f.SetPlanCache(pc)

	q := `SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2013" . }`
	for i := 0; i < 3; i++ {
		if _, err := f.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := pc.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
	if pc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pc.Len())
	}
	if h, m := f.PlanCacheStats(); h != hits || m != misses {
		t.Fatalf("PlanCacheStats = %d/%d, want %d/%d", h, m, hits, misses)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	f, _, _ := newsWorld(t)
	pc := NewPlanCache(2)
	f.SetPlanCache(pc)

	qa := `SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2013" . }`
	qb := `SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2003" . }`
	qc := `SELECT ?p ?n WHERE { ?p <http://kb/name> ?n . }`
	for _, q := range []string{qa, qb} {
		if _, err := f.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	// Touch qa so qb becomes least recently used, then insert qc.
	if _, err := f.Query(qa); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Query(qc); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", pc.Len())
	}
	if ev := pc.Evictions(); ev != 1 {
		t.Fatalf("Evictions = %d, want 1 (qb pushed out by qc)", ev)
	}
	_, missesBefore := pc.Stats()
	if _, err := f.Query(qa); err != nil { // still cached
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != missesBefore {
		t.Fatalf("recently-used plan was evicted (misses %d -> %d)", missesBefore, misses)
	}
	if _, err := f.Query(qb); err != nil { // evicted, re-planned
		t.Fatal(err)
	}
	if _, misses := pc.Stats(); misses != missesBefore+1 {
		t.Fatalf("LRU plan not evicted (misses %d -> %d)", missesBefore, misses)
	}
	if ev := pc.Evictions(); ev != 2 {
		t.Fatalf("Evictions = %d, want 2 (re-planning qb evicted another entry)", ev)
	}
}

func TestPlanCacheParseErrorsNotCached(t *testing.T) {
	f, _, _ := newsWorld(t)
	pc := NewPlanCache(8)
	f.SetPlanCache(pc)

	if _, err := f.Query(`SELECT WHERE {`); err == nil {
		t.Fatal("malformed query did not error")
	}
	if pc.Len() != 0 {
		t.Fatalf("parse failure was cached (Len = %d)", pc.Len())
	}
}

// TestPlanCacheSharedAcrossSnapshots proves the cache-across-snapshots
// contract: a plan compiled under one link set is reused by WithLinks
// snapshots with different links, and still yields each snapshot's own
// correct answers and provenance — plans are link-independent.
func TestPlanCacheSharedAcrossSnapshots(t *testing.T) {
	f, _, link := newsWorld(t)
	pc := NewPlanCache(8)
	f.SetPlanCache(pc)
	q := `SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`

	withLink := f.WithLinks(links.NewSet(link))
	rs, err := withLink.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("linked snapshot rows = %d, want 2", len(rs.Rows))
	}

	empty := f.WithLinks(links.NewSet())
	rs, err = empty.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("linkless snapshot rows = %d, want 0 (stale plan leaked links?)", len(rs.Rows))
	}

	hits, misses := pc.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1 (one plan shared by both snapshots)", hits, misses)
	}

	// And back again: the same cached plan serves the re-linked view.
	rs, err = f.WithLinks(links.NewSet(link)).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || !rs.Rows[0].Used.Has(link) {
		t.Fatalf("re-linked snapshot lost rows or provenance")
	}
}

func TestPlanCacheConcurrentQueries(t *testing.T) {
	f, _, _ := newsWorld(t)
	pc := NewPlanCache(4)
	f.SetPlanCache(pc)
	snap := f.WithLinks(links.NewSet())

	queries := []string{
		`SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2013" . }`,
		`SELECT ?p ?n WHERE { ?p <http://kb/name> ?n . }`,
		`SELECT ?a WHERE { ?a <http://news/about> ?x . }`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := snap.Query(queries[(w+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := pc.Stats()
	if hits+misses != 8*25 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*25)
	}
	if pc.Len() != len(queries) {
		t.Fatalf("Len = %d, want %d", pc.Len(), len(queries))
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	if got := NewPlanCache(0).capacity; got != DefaultPlanCacheSize {
		t.Fatalf("capacity = %d, want default %d", got, DefaultPlanCacheSize)
	}
	if got := NewPlanCache(-3).capacity; got != DefaultPlanCacheSize {
		t.Fatalf("capacity = %d, want default %d", got, DefaultPlanCacheSize)
	}
}

// TestPlanCacheCapacityChurn hammers a tiny cache with more distinct
// queries than it can hold; the bound must hold throughout.
func TestPlanCacheCapacityChurn(t *testing.T) {
	f, _, _ := newsWorld(t)
	pc := NewPlanCache(3)
	f.SetPlanCache(pc)
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf(`SELECT ?p WHERE { ?p <http://kb/award> "A%d" . }`, i)
		if _, err := f.Query(q); err != nil {
			t.Fatal(err)
		}
		if pc.Len() > 3 {
			t.Fatalf("cache grew past capacity: %d", pc.Len())
		}
	}
	if ev := pc.Evictions(); ev != 17 {
		t.Fatalf("Evictions = %d, want 17 (20 distinct plans through capacity 3)", ev)
	}
}
