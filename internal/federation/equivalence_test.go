package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/synth"
)

// The equivalence harness is the proof obligation of the fast read
// path: every evaluator configuration — worker count × join reordering
// × provenance representation — must produce results byte-identical to
// the legacy serial evaluator (Workers:1, NoReorder, LegacyProvenance)
// on every test world and query shape. "Byte-identical" is judged on
// the canonical serialization of a ResultSet (rows sorted together
// with their provenance): the engine has never guaranteed a row order
// beyond ORDER BY — Go map iteration already varies it run to run —
// so the solution multiset, per-solution provenance, Ask and Degraded
// are the semantics, and those must match exactly.

// legacyOptions is the pre-PR-5 evaluator, the reference semantics.
var legacyOptions = Options{Workers: 1, NoReorder: true, LegacyProvenance: true}

// evalConfigs enumerates the configuration lattice under test: worker
// count × reordering × provenance × adaptive re-planning = 32 configs.
func evalConfigs() []Options {
	var out []Options
	for _, w := range []int{1, 2, 3, 8} {
		for _, noReorder := range []bool{false, true} {
			for _, legacyProv := range []bool{false, true} {
				for _, replan := range []int{0, 1} {
					out = append(out, Options{Workers: w, NoReorder: noReorder, LegacyProvenance: legacyProv, ReplanEvery: replan})
				}
			}
		}
	}
	return out
}

func optionsLabel(o Options) string {
	return fmt.Sprintf("w%d_reorder=%v_cow=%v_replan=%d", o.Workers, !o.NoReorder, !o.LegacyProvenance, o.ReplanEvery)
}

// withOptions returns a shallow copy of f running under o, so one
// world can be queried under every configuration without rebuilding.
func withOptions(f *Federator, o Options) *Federator {
	cp := *f
	cp.opts = o
	return &cp
}

// canonicalResult serializes a ResultSet into a form where semantic
// equality is string equality: header, Ask, sorted Degraded (already
// sorted by the engine), and the rows sorted lexicographically with
// each row's bindings in Vars order and its provenance links sorted.
func canonicalResult(rs *ResultSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vars=%v\nask=%v\ndegraded=%v\n", rs.Vars, rs.Ask, rs.Degraded)
	rows := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		var rb strings.Builder
		for _, v := range rs.Vars {
			if t, ok := r.Binding[v]; ok {
				fmt.Fprintf(&rb, "?%s=%s|", v, t.String())
			} else {
				fmt.Fprintf(&rb, "?%s=<unbound>|", v)
			}
		}
		rb.WriteString(" used=")
		for _, l := range r.Used.Slice() { // Slice is sorted (E1, E2)
			fmt.Fprintf(&rb, "(%d,%d)", l.E1, l.E2)
		}
		rows = append(rows, rb.String())
	}
	sort.Strings(rows)
	for _, r := range rows {
		sb.WriteString(r)
		sb.WriteString("\n")
	}
	return sb.String()
}

// assertAllConfigsMatch runs each query under the legacy reference and
// every configuration and requires canonical equality.
func assertAllConfigsMatch(t *testing.T, f *Federator, queries map[string]string) {
	t.Helper()
	for name, q := range queries {
		q := q
		t.Run(name, func(t *testing.T) {
			ref, err := withOptions(f, legacyOptions).Query(q)
			if err != nil {
				t.Fatalf("legacy evaluator: %v", err)
			}
			want := canonicalResult(ref)
			for _, o := range evalConfigs() {
				fo := withOptions(f, o)
				runs := 1
				if o.ReplanEvery > 0 {
					// Adaptive configs get their own plan cache and run
					// the query three times: cold (static estimates),
					// learned (ranking from the first run's observed
					// cardinalities) and refined. Every run must stay
					// answer-identical to the legacy evaluator no matter
					// what order the observations steer it to.
					fo.SetPlanCache(NewPlanCache(16))
					runs = 3
				}
				for r := 0; r < runs; r++ {
					got, err := fo.Query(q)
					if err != nil {
						t.Fatalf("%s run %d: %v", optionsLabel(o), r, err)
					}
					if c := canonicalResult(got); c != want {
						t.Errorf("%s run %d diverges from legacy:\n--- legacy ---\n%s--- %s ---\n%s",
							optionsLabel(o), r, want, optionsLabel(o), c)
					}
				}
			}
		})
	}
}

// newsQueries exercises every query shape over the news world.
func newsQueries() map[string]string {
	return map[string]string{
		"join-across-sameas": `SELECT ?article WHERE {
			?p <http://kb/award> "NBA MVP 2013" .
			?article <http://news/about> ?p .
		}`,
		"single-source": `SELECT ?p WHERE { ?p <http://kb/award> "NBA MVP 2013" . }`,
		"selective-first-reorder": `SELECT ?name ?article WHERE {
			?p <http://kb/name> ?name .
			?article <http://news/about> ?p .
			?p <http://kb/award> "NBA MVP 2013" .
		}`,
		"optional-unbound": `SELECT ?p ?name WHERE {
			?p <http://kb/award> ?a .
			OPTIONAL { ?p <http://kb/name> ?name . }
		}`,
		"union": `SELECT ?x WHERE {
			{ ?x <http://kb/award> "NBA MVP 2013" . } UNION { ?x <http://kb/award> "NBA MVP 2003" . }
		}`,
		"filter": `SELECT ?p ?a WHERE {
			?p <http://kb/award> ?a .
			FILTER(?a != "NBA MVP 2003")
		}`,
		"distinct-provenance-merge": `SELECT DISTINCT ?p WHERE {
			?p <http://kb/award> "NBA MVP 2013" .
			?article <http://news/about> ?p .
		}`,
		"order-by": `SELECT ?p ?a WHERE { ?p <http://kb/award> ?a . } ORDER BY ?a`,
		"ask":      `ASK { ?a <http://news/about> ?p . ?p <http://kb/award> "NBA MVP 2013" . }`,
		"aggregate-count": `SELECT ?p (COUNT(?article) AS ?n) WHERE {
			?p <http://kb/award> "NBA MVP 2013" .
			?article <http://news/about> ?p .
		} GROUP BY ?p`,
		"unbound-predicate": `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
		"unbound-predicate-join": `SELECT ?p ?o ?article WHERE {
			?p <http://kb/award> "NBA MVP 2013" .
			?article ?rel ?p .
			?article ?rel ?o .
		}`,
	}
}

func TestEquivalenceNewsWorld(t *testing.T) {
	f, _, _ := newsWorld(t)
	assertAllConfigsMatch(t, f, newsQueries())
}

func TestEquivalenceChainWorld(t *testing.T) {
	f, _ := chainWorld(t)
	assertAllConfigsMatch(t, f, map[string]string{
		"multi-hop": `SELECT ?name ?price WHERE {
			?p <http://b/label> "Aspirin" .
			?p <http://a/name> ?name .
			?p <http://c/price> ?price .
		}`,
		"multi-hop-reordered-source": `SELECT ?name ?price WHERE {
			?p <http://a/name> ?name .
			?p <http://c/price> ?price .
			?p <http://b/label> "Aspirin" .
		}`,
		"optional-cross-source": `SELECT ?p ?name ?price WHERE {
			?p <http://b/label> "Aspirin" .
			OPTIONAL { ?p <http://a/name> ?name . }
			OPTIONAL { ?p <http://c/price> ?price . }
		}`,
		"scan-all": `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
	})
}

// TestEquivalenceDegradedWorld pins down that Degraded reporting is a
// plan-level decision: with ds2's breaker held open, every evaluator
// configuration reports the same Degraded list and the same partial
// rows, regardless of join order or worker count.
func TestEquivalenceDegradedWorld(t *testing.T) {
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	p := rdf.IRI("http://x/p")
	q := rdf.IRI("http://x/q")
	g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/a"), P: p, O: rdf.Literal("v1")})
	g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/a"), P: q, O: rdf.Literal("w1")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://ds2/b"), P: p, O: rdf.Literal("v2")})

	f := New(dict)
	f.SetResilience(Resilience{
		SourceTimeout: 20 * time.Millisecond,
		Retries:       0,
		BackoffBase:   time.Millisecond,
		BackoffMax:    time.Millisecond,
		Breaker:       BreakerConfig{Failures: 1, Cooldown: time.Hour, Successes: 1},
	})
	if err := f.AddSource("ds1", g1); err != nil {
		t.Fatal(err)
	}
	err := f.Add(Source{Name: "ds2", Graph: g2, Access: func(context.Context) error {
		return errors.New("down")
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLinks(links.NewSet())

	// One failing query trips the breaker (threshold 1, long cooldown),
	// so every run below sees a stably open circuit.
	if _, err := f.Query(`SELECT ?s WHERE { ?s <http://x/p> ?o . }`); err != nil {
		t.Fatal(err)
	}

	assertAllConfigsMatch(t, f, map[string]string{
		"degraded-join": `SELECT ?s ?o ?w WHERE {
			?s <http://x/p> ?o .
			?s <http://x/q> ?w .
		}`,
		"degraded-scan": `SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }`,
	})
}

// TestEquivalenceSynthProfiles runs the harness over down-scaled synth
// dataset pairs with the ground-truth links installed, covering dense
// sameAs fan-out and realistic value distributions.
func TestEquivalenceSynthProfiles(t *testing.T) {
	profiles := []string{"dbpedia-nytimes", "dbpedia-drugbank", "skewed-hub"}
	if testing.Short() {
		// Keep one paper profile plus the skewed profile, whose whole
		// point is that adaptive configs execute a different join order
		// than static ones — and must still answer identically.
		profiles = []string{"dbpedia-nytimes", "skewed-hub"}
	}
	for _, name := range profiles {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := synth.ProfileByName(name)
			if !ok {
				t.Fatalf("unknown profile %q", name)
			}
			ds := synth.Generate(prof.Scale(0.1))
			f := New(ds.Dict)
			if err := f.AddSource("ds1", ds.G1); err != nil {
				t.Fatal(err)
			}
			if err := f.AddSource("ds2", ds.G2); err != nil {
				t.Fatal(err)
			}
			f.SetLinks(ds.GroundTruth)

			queries := map[string]string{
				"cross-source-join": `SELECT ?e ?n ?g WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					?e <http://ds2.example.org/prop/group> ?g .
				}`,
				"selective-category": `SELECT ?e ?n WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					?e <http://ds1.example.org/onto/category> ?c .
					?e <http://ds2.example.org/prop/group> ?c .
				}`,
				"optional-cross": `SELECT ?e ?n ?b WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					OPTIONAL { ?e <http://ds2.example.org/prop/born> ?b . }
				}`,
				"filtered-join": `SELECT ?e ?g WHERE {
					?e <http://ds2.example.org/prop/group> ?g .
					?e <http://ds1.example.org/onto/type> ?ty .
					FILTER(?g != "none")
				}`,
				"distinct-groups": `SELECT DISTINCT ?g WHERE {
					?e <http://ds1.example.org/onto/label> ?n .
					?e <http://ds2.example.org/prop/group> ?g .
				} ORDER BY ?g`,
				"count-per-group": `SELECT ?g (COUNT(?e) AS ?n) WHERE {
					?e <http://ds1.example.org/onto/type> ?ty .
					?e <http://ds2.example.org/prop/group> ?g .
				} GROUP BY ?g`,
			}
			if name == "skewed-hub" {
				// The query shape the profile is built to mislead: the
				// static planner schedules the hub fan-out before the
				// type filter, an adaptive run learns to flip them.
				// Either order must produce the same rows + provenance.
				queries["hub-fanout"] = fmt.Sprintf(`SELECT ?e ?x WHERE {
					?e <http://ds1.example.org/onto/category> %q .
					?e <http://ds2.example.org/prop/connectedWith> ?x .
					?e <http://ds1.example.org/onto/type> "active" .
				}`, synth.SkewSeedCategory)
			}
			assertAllConfigsMatch(t, f, queries)
		})
	}
}

// TestEquivalenceIsSensitive guards the harness itself: canonical
// serialization must distinguish result sets that differ in rows,
// provenance, or degradation, or the equality assertions above would
// be vacuous.
func TestEquivalenceIsSensitive(t *testing.T) {
	base := &ResultSet{Vars: []string{"x"}, Rows: []Row{
		{Binding: map[string]rdf.Term{"x": rdf.Literal("a")}, Used: links.NewSet()},
	}}
	rowDiff := &ResultSet{Vars: []string{"x"}, Rows: []Row{
		{Binding: map[string]rdf.Term{"x": rdf.Literal("b")}, Used: links.NewSet()},
	}}
	provDiff := &ResultSet{Vars: []string{"x"}, Rows: []Row{
		{Binding: map[string]rdf.Term{"x": rdf.Literal("a")}, Used: links.NewSet(links.Link{E1: 1, E2: 2})},
	}}
	degradedDiff := &ResultSet{Vars: []string{"x"}, Rows: base.Rows, Degraded: []string{"ds2"}}
	unboundDiff := &ResultSet{Vars: []string{"x"}, Rows: []Row{
		{Binding: map[string]rdf.Term{}, Used: links.NewSet()},
	}}
	for name, other := range map[string]*ResultSet{
		"row":      rowDiff,
		"prov":     provDiff,
		"degraded": degradedDiff,
		"unbound":  unboundDiff,
	} {
		if canonicalResult(base) == canonicalResult(other) {
			t.Errorf("canonicalResult conflates base with %s-differing result", name)
		}
	}
}
