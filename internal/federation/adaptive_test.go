package federation

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"alex/internal/links"
	"alex/internal/sparql"
	"alex/internal/synth"
)

// skewedFederation builds the skewed-hub synth federation at the
// given scale plus the query shape the profile is designed to
// mislead. Stage ids of the query's patterns follow written order:
// 0 = category, 1 = connectedWith (the hub fan-out), 2 = type filter.
func skewedFederation(t testing.TB, scale float64) (*Federator, *synth.Dataset, string) {
	t.Helper()
	prof, ok := synth.ProfileByName("skewed-hub")
	if !ok {
		t.Fatal("missing skewed-hub profile")
	}
	ds := synth.Generate(prof.Scale(scale))
	f := New(ds.Dict)
	if err := f.AddSource("ds1", ds.G1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSource("ds2", ds.G2); err != nil {
		t.Fatal(err)
	}
	f.SetLinks(ds.GroundTruth)
	query := fmt.Sprintf(`SELECT ?e ?x WHERE {
		?e <http://ds1.example.org/onto/category> %q .
		?e <http://ds2.example.org/prop/connectedWith> ?x .
		?e <http://ds1.example.org/onto/type> "active" .
	}`, synth.SkewSeedCategory)
	return f, ds, query
}

// skewedWorld is skewedFederation at test scale (100 entity pairs).
func skewedWorld(t testing.TB) (*Federator, *synth.Dataset, string) {
	t.Helper()
	return skewedFederation(t, 0.1)
}

// traceOf installs a traceExec hook on a shallow copy of f and returns
// the copy plus the captured executed-order sequence (one entry per
// evaluated group, in evaluation order).
func traceOf(f *Federator, o Options) (*Federator, *[][]int) {
	cp := withOptions(f, o)
	var traces [][]int
	cp.traceExec = func(_ *sparql.GroupGraphPattern, order []int) {
		traces = append(traces, append([]int(nil), order...))
	}
	return cp, &traces
}

// TestReplanZeroIsStaticPlan is the regression gate for the baseline:
// with ReplanEvery=0 the evaluator must execute exactly the PR-5
// static plan order, and record no observations.
func TestReplanZeroIsStaticPlan(t *testing.T) {
	f, _, query := skewedWorld(t)
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	p := f.planQuery(q)
	fed, traces := traceOf(f, Options{Workers: 1})
	rs, err := fed.evalPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("query returned no rows")
	}
	if len(*traces) != 1 || !reflect.DeepEqual((*traces)[0], p.order[q.Where]) {
		t.Fatalf("executed order %v != static plan order %v", *traces, p.order[q.Where])
	}
	for i := range p.obs.stages {
		if p.obs.stages[i].runs.Load() != 0 {
			t.Fatalf("static execution recorded observations for stage %d", i)
		}
	}
}

// TestReplanDeterminism: same query + same injected observation
// sequence ⇒ identical executed plan sequence, across repetitions and
// worker counts, with no wall-clock dependence. Each case rebuilds a
// fresh plan, injects the observations, evaluates once, and compares
// the full group-by-group executed order against the expectation and
// against every other repetition.
func TestReplanDeterminism(t *testing.T) {
	f, _, query := skewedWorld(t)
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}

	inject := func(o *obsTable, stage int, in, out uint64) {
		o.stages[stage].in.Store(in)
		o.stages[stage].out.Store(out)
		o.stages[stage].runs.Store(1)
	}
	cases := []struct {
		name   string
		inject func(o *obsTable)
		want   [][]int
	}{
		{
			name:   "no-observations-reproduces-static-plan",
			inject: func(o *obsTable) {},
			want:   [][]int{{0, 1, 2}},
		},
		{
			name: "fanout-observed-hoists-type-filter",
			inject: func(o *obsTable) {
				inject(o, 1, 100, 800) // connectedWith expands 8x per row
				inject(o, 2, 800, 80)  // type filter keeps 1 in 10
			},
			want: [][]int{{0, 2, 1}},
		},
		{
			name: "cheap-fanout-observed-keeps-static-order",
			inject: func(o *obsTable) {
				inject(o, 1, 100, 10)
				inject(o, 2, 10, 80)
			},
			want: [][]int{{0, 1, 2}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for rep := 0; rep < 20; rep++ {
					p := f.planQuery(q)
					tc.inject(p.obs)
					fed, traces := traceOf(f, Options{Workers: workers, ReplanEvery: 1})
					if _, err := fed.evalPlan(context.Background(), p); err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(*traces, tc.want) {
						t.Fatalf("w%d rep %d: executed %v, want %v", workers, rep, *traces, tc.want)
					}
				}
			}
		})
	}
}

// TestAdaptiveLearnsSkewedOrder is the end-to-end learning loop over
// the plan cache: the first query under a cold plan executes the
// (wrong) static order, folds its observations into the cached plan,
// and the second query executes the corrected order — with identical
// answers, a learned-hit counted, and re-plans counted.
func TestAdaptiveLearnsSkewedOrder(t *testing.T) {
	f, _, query := skewedWorld(t)
	f.SetPlanCache(NewPlanCache(8))
	fed, traces := traceOf(f, Options{Workers: 1, ReplanEvery: 1})

	first, err := fed.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 {
		t.Fatal("query returned no rows")
	}
	if _, hits := fed.AdaptiveStats(); hits != 0 {
		t.Fatalf("learned hits after cold query = %d, want 0", hits)
	}
	second, err := fed.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalResult(second), canonicalResult(first); got != want {
		t.Fatalf("learned order changed the answer:\n--- first ---\n%s--- second ---\n%s", want, got)
	}
	want := [][]int{{0, 1, 2}, {0, 2, 1}}
	if !reflect.DeepEqual(*traces, want) {
		t.Fatalf("executed orders %v, want %v (static then learned)", *traces, want)
	}
	replans, hits := fed.AdaptiveStats()
	if hits != 1 {
		t.Fatalf("learned hits = %d, want 1", hits)
	}
	if replans < 2 {
		t.Fatalf("replans = %d, want >= 2 (ReplanEvery=1 re-ranks at every stage boundary)", replans)
	}
}

// TestObsEpochInvalidation: learned cardinalities are a function of
// the sameAs link set; when a WithLinks snapshot moves the link count
// past the drift tolerance, the cached plan's observations reset, its
// epoch bumps, and execution falls back to the static order until it
// re-learns under the new links.
func TestObsEpochInvalidation(t *testing.T) {
	f, ds, query := skewedWorld(t)
	f.SetPlanCache(NewPlanCache(8))
	fed, traces := traceOf(f, Options{Workers: 1, ReplanEvery: 1})

	for i := 0; i < 2; i++ { // learn under the full link set
		if _, err := fed.Query(query); err != nil {
			t.Fatal(err)
		}
	}
	p, err := fed.planFor(query)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.obs.Epoch(); got != 0 {
		t.Fatalf("epoch after learning = %d, want 0", got)
	}

	// Drop 30% of the links (keeping the hub entity's), well past the
	// 1/8 + slack tolerance for a 100-link set.
	all := ds.GroundTruth.Slice()
	sub := links.NewSet(all[:70]...)
	snap := fed.WithLinks(sub)
	third, err := snap.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Rows) == 0 {
		t.Fatal("query under reduced links returned no rows")
	}
	if got := p.obs.Epoch(); got != 1 {
		t.Fatalf("epoch after link drift = %d, want 1", got)
	}
	if got := (*traces)[2]; !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("post-invalidation order %v, want static {0,1,2}", got)
	}
	// And it re-learns under the new link set without another reset.
	if _, err := snap.Query(query); err != nil {
		t.Fatal(err)
	}
	if got := (*traces)[3]; !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Fatalf("re-learned order %v, want {0,2,1}", got)
	}
	if got := p.obs.Epoch(); got != 1 {
		t.Fatalf("epoch after re-learning = %d, want 1", got)
	}
}

// TestObsTableValidate pins the drift-tolerance arithmetic.
func TestObsTableValidate(t *testing.T) {
	o := newObsTable(2)
	if o.validate(100) {
		t.Fatal("fresh table claims usable data")
	}
	o.stages[0].in.Store(10)
	o.stages[0].out.Store(20)
	o.stages[0].runs.Store(1)
	if !o.validate(100) {
		t.Fatal("table with data reports none")
	}
	// Within tolerance: 100/8 + 8 = 20 links of drift.
	if !o.validate(120) {
		t.Fatal("drift of 20 on 100 links invalidated the table")
	}
	if got := o.Epoch(); got != 0 {
		t.Fatalf("epoch = %d, want 0", got)
	}
	// Past tolerance: reset + epoch bump.
	if o.validate(130) {
		t.Fatal("drift of 30 on 100 links kept stale data")
	}
	if got := o.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if o.stages[0].runs.Load() != 0 {
		t.Fatal("reset left stage counters behind")
	}
	if o.validate(130) {
		t.Fatal("emptied table claims usable data")
	}
}
