package experiments

import (
	"strings"
	"testing"

	"alex/internal/core"
)

// smallOpts keeps experiment tests fast on one core.
func smallOpts() Options {
	return Options{
		Scale: 0.25,
		Mutate: func(c *core.Config) {
			c.EpisodeSize = 200
			c.MaxEpisodes = 12
		},
	}
}

func TestRunQualityUnknownProfile(t *testing.T) {
	if _, err := RunQuality("no-such-pair", Options{}); err == nil {
		t.Fatal("unknown profile did not error")
	}
}

func TestRunQualityImprovesF(t *testing.T) {
	r, err := RunQuality("opencyc-lexvo", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Final.F1 <= r.Initial.F1 {
		t.Fatalf("no improvement: %.3f -> %.3f", r.Initial.F1, r.Final.F1)
	}
	if r.Discovered == 0 {
		t.Fatal("no new links discovered")
	}
	if len(r.Series.Points) != r.Result.Episodes+1 {
		t.Fatalf("series has %d points for %d episodes", len(r.Series.Points), r.Result.Episodes)
	}
	if rep := r.Report(); !strings.Contains(rep, "profile opencyc-lexvo") {
		t.Fatal("report missing profile header")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(0.05)
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 dataset pairs", len(rows))
	}
	for _, r := range rows {
		if r.Triples1 == 0 || r.Triples2 == 0 || r.GTLinks == 0 {
			t.Errorf("row %s has zero counts: %+v", r.Profile, r)
		}
	}
	if s := FormatTable1(rows); !strings.Contains(s, "dbpedia-nytimes") {
		t.Fatal("formatted table missing rows")
	}
}

func TestFig5Filtering(t *testing.T) {
	r, err := Fig5("dbpedia-nytimes", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.FilteredPairs >= r.TotalPairs {
		t.Fatalf("no reduction: %d of %d", r.FilteredPairs, r.TotalPairs)
	}
	if r.ReductionPct < 50 {
		t.Errorf("reduction = %.1f%%, want substantial (the paper reports 95%%)", r.ReductionPct)
	}
	if r.GroundTruth == 0 {
		t.Error("no ground truth in partition 0")
	}
	if rep := r.Report(); !strings.Contains(rep, "Figure 5a") {
		t.Fatal("report format wrong")
	}
}

func TestFig6Blacklist(t *testing.T) {
	c, err := Fig6Blacklist("opencyc-lexvo", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	meanNeg := func(r *QualityRun) float64 {
		s := 0.0
		for _, v := range r.Series.NegativeFeedbackPct {
			s += v
		}
		if len(r.Series.NegativeFeedbackPct) == 0 {
			return 0
		}
		return s / float64(len(r.Series.NegativeFeedbackPct))
	}
	with, without := meanNeg(c.Runs[0]), meanNeg(c.Runs[1])
	t.Logf("negative feedback: with=%.1f%% without=%.1f%%", with, without)
	if with > without+5 {
		t.Errorf("blacklist increased negative feedback substantially: %.1f vs %.1f", with, without)
	}
	if rep := c.Report(); !strings.Contains(rep, "with blacklist") {
		t.Fatal("report missing labels")
	}
}

func TestFig7Rollback(t *testing.T) {
	r, err := Fig7Rollback("opencyc-lexvo", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PartitionFinalF) == 0 {
		t.Fatal("no per-partition data")
	}
	t.Logf("with rollback F=%.3f, without F=%.3f", r.WithRollback.Final.F1, r.WithoutRollback.Final.F1)
	// The defining property: rollback should not be worse, and usually
	// much better, than no rollback.
	if r.WithoutRollback.Final.F1 > r.WithRollback.Final.F1+0.10 {
		t.Errorf("rollback hurt quality: %.3f vs %.3f", r.WithRollback.Final.F1, r.WithoutRollback.Final.F1)
	}
	if rep := r.Report(); !strings.Contains(rep, "per-partition final F") {
		t.Fatal("report format wrong")
	}
}

func TestFig9IncorrectFeedback(t *testing.T) {
	// Keep per-link feedback exposure realistic (~1 judgment per link
	// per episode); a tiny candidate set hammered by a large episode
	// size would see every link mis-judged several times, which no
	// system could survive. Full profile size with a modest episode
	// keeps the noise statistics meaningful.
	opts := Options{Scale: 1.0, Mutate: func(c *core.Config) {
		c.EpisodeSize = 100
		c.MaxEpisodes = 15
	}}
	c, err := Fig9IncorrectFeedback("opencyc-lexvo", opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, noisy := c.Runs[0], c.Runs[1]
	t.Logf("correct F=%.3f, 10%% incorrect F=%.3f", correct.Final.F1, noisy.Final.F1)
	// Recall must stay reasonably robust under noise (the paper's claim).
	if noisy.Final.Recall < correct.Final.Recall-0.35 {
		t.Errorf("recall collapsed under noise: %.3f vs %.3f", noisy.Final.Recall, correct.Final.Recall)
	}
}

func TestFig10StepSize(t *testing.T) {
	sw, err := Fig10StepSize("opencyc-lexvo", smallOpts(), []float64{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	if rep := sw.Report(); !strings.Contains(rep, "step-size") {
		t.Fatal("report format wrong")
	}
}

func TestFig11EpisodeSize(t *testing.T) {
	sw, err := Fig11EpisodeSize("opencyc-lexvo", Options{Scale: 0.25, Mutate: func(c *core.Config) { c.MaxEpisodes = 10 }}, []int{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
}

func TestAblations(t *testing.T) {
	if _, err := AblationPolicy("opencyc-lexvo", smallOpts()); err != nil {
		t.Fatal(err)
	}
	if sw, err := AblationEpsilon("opencyc-lexvo", smallOpts(), []float64{0.05, 0.3}); err != nil || len(sw.Points) != 2 {
		t.Fatalf("epsilon sweep: %v", err)
	}
	if sw, err := AblationTheta("opencyc-lexvo", smallOpts(), []float64{0.3, 0.5}); err != nil || len(sw.Points) != 2 {
		t.Fatalf("theta sweep: %v", err)
	}
	if sw, err := AblationRollbackThreshold("opencyc-lexvo", smallOpts(), []int{1, 10}); err != nil || len(sw.Points) != 2 {
		t.Fatalf("rollback sweep: %v", err)
	}
}

func TestRunQueryDrivenImprovesF(t *testing.T) {
	// Scale 0.75 is the smallest instance where the exploration loop has
	// room to act: at 0.5 the candidate set collapses to a handful of
	// links within a few episodes and the run measures noise, not the
	// loop.
	r, err := RunQueryDriven("opencyc-lexvo", Options{Scale: 0.75, Mutate: func(c *core.Config) {
		c.EpisodeSize = 150
		c.MaxEpisodes = 25
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("query-driven: %v -> %v, discovered %d", r.Initial, r.Final, r.Discovered)
	if r.Final.F1 <= r.Initial.F1 {
		t.Fatalf("no improvement through the federated loop: %.3f -> %.3f", r.Initial.F1, r.Final.F1)
	}
	if r.Discovered == 0 {
		t.Fatal("no links discovered through query feedback")
	}
}

func TestRunQueryDrivenUnknownProfile(t *testing.T) {
	if _, err := RunQueryDriven("nope", Options{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestCrowdFeedback(t *testing.T) {
	r, err := CrowdFeedback("opencyc-lexvo", Options{Scale: 1.0, Mutate: func(c *core.Config) {
		c.EpisodeSize = 100
		c.MaxEpisodes = 12
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 3 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	single, crowd9 := r.Runs[0].Final, r.Runs[2].Final
	t.Logf("single F=%.3f, crowd9 F=%.3f", single.F1, crowd9.F1)
	// The big crowd must not be worse than the single noisy user.
	if crowd9.F1 < single.F1-0.05 {
		t.Fatalf("crowd voting hurt quality: %.3f vs %.3f", crowd9.F1, single.F1)
	}
	if rep := r.Report(); !strings.Contains(rep, "crowd of 9") {
		t.Fatal("report format wrong")
	}
}

func TestRunMultiSeed(t *testing.T) {
	r, err := RunMultiSeed("opencyc-lexvo", smallOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.F1.N != 3 || len(r.Runs) != 3 {
		t.Fatalf("n = %d", r.F1.N)
	}
	if r.F1.Mean <= 0 || r.F1.Mean > 1 {
		t.Fatalf("mean F = %f", r.F1.Mean)
	}
	if r.F1.Min > r.F1.Mean || r.F1.Max < r.F1.Mean {
		t.Fatalf("stats inconsistent: %+v", r.F1)
	}
	if rep := r.Report(); !strings.Contains(rep, "final F-measure") {
		t.Fatal("report format wrong")
	}
	if _, err := RunMultiSeed("nope", smallOpts(), 2); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestSeedStats(t *testing.T) {
	st := newSeedStats([]float64{1, 2, 3})
	if st.Mean != 2 || st.Min != 1 || st.Max != 3 || st.N != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Std < 0.99 || st.Std > 1.01 {
		t.Fatalf("std = %f, want 1", st.Std)
	}
	if empty := newSeedStats(nil); empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestSummarySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("summary runs every profile")
	}
	rows, err := Summary(Options{Scale: 0.15, Mutate: func(c *core.Config) {
		c.EpisodeSize = 100
		c.MaxEpisodes = 8
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	if s := FormatSummary(rows); !strings.Contains(s, "dbpedia-nytimes") {
		t.Fatal("format wrong")
	}
}

func TestExecutionTime(t *testing.T) {
	rows, err := ExecutionTime([]string{"opencyc-lexvo"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Total <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if s := FormatTiming(rows); !strings.Contains(s, "per-episode") {
		t.Fatal("timing format wrong")
	}
}

// TestRunQualityStoreBackendsAgree: the experiment pipeline is fully
// seeded, so running it over the mmap'd segment store must reproduce
// the in-memory run metric-for-metric.
func TestRunQualityStoreBackendsAgree(t *testing.T) {
	mem, err := RunQuality("opencyc-lexvo", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	dopts := smallOpts()
	dopts.Store = "disk"
	disk, err := RunQuality("opencyc-lexvo", dopts)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Final != disk.Final || mem.Initial != disk.Initial {
		t.Fatalf("backends diverge:\nmem  initial %+v final %+v\ndisk initial %+v final %+v",
			mem.Initial, mem.Final, disk.Initial, disk.Final)
	}
	if mem.Discovered != disk.Discovered || mem.Result.Episodes != disk.Result.Episodes {
		t.Fatalf("backends diverge: mem discovered=%d episodes=%d, disk discovered=%d episodes=%d",
			mem.Discovered, mem.Result.Episodes, disk.Discovered, disk.Result.Episodes)
	}
}

func TestRunQualityUnknownStore(t *testing.T) {
	if _, err := RunQuality("opencyc-lexvo", Options{Store: "floppy"}); err == nil {
		t.Fatal("unknown store backend did not error")
	}
}
