// Package experiments contains one driver per table and figure of the
// paper's evaluation (§7 and appendices B-D). Each driver builds the
// synthetic dataset pair for the experiment, runs the PARIS baseline to
// obtain initial candidate links, runs ALEX with a ground-truth feedback
// oracle, and reports the same series/rows the paper plots.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/store"
	"alex/internal/synth"
)

// QualityRun is the outcome of one quality experiment (Figures 2-4, 8).
type QualityRun struct {
	Profile     synth.Profile
	Initial     eval.Metrics
	Final       eval.Metrics
	Series      eval.Series
	Result      core.Result
	GroundTruth int
	// Discovered counts correct links in the final candidate set that
	// were not among the initial candidates (the "new links discovered
	// by ALEX" numbers in §7.2).
	Discovered int
	BuildTime  time.Duration
	RunTime    time.Duration
}

// Options tweaks a quality run.
type Options struct {
	// Scale multiplies entity counts (1.0 = full profile size).
	Scale float64
	// ErrRate is the incorrect-feedback probability (Appendix C).
	ErrRate float64
	// Mutate adjusts the ALEX config before the run.
	Mutate func(*core.Config)
	// Seed overrides the oracle/driver seed (0 = default).
	Seed int64
	// Store selects the triple-store backend the run's sources are
	// served from: "" or "mem" keeps the generated rdf.Graphs; "disk"
	// persists them into a temporary mmap'd segment store (the alexd
	// -store=disk serving path), so experiments exercise the segment
	// read path end to end.
	Store string
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// stores returns the dataset pair behind the configured backend. For
// "disk" the graphs are compacted into a segment store under a
// temporary directory; cleanup unmaps and removes it (safe to call on
// the mem path too).
func (o *Options) stores(ds *synth.Dataset) (t1, t2 store.TripleStore, cleanup func(), err error) {
	switch o.Store {
	case "", "mem":
		return ds.G1, ds.G2, func() {}, nil
	case "disk":
	default:
		return nil, nil, nil, fmt.Errorf("experiments: unknown store backend %q (mem|disk)", o.Store)
	}
	dir, err := os.MkdirTemp("", "alexstore-*")
	if err != nil {
		return nil, nil, nil, err
	}
	set, err := store.Create(dir, ds.Dict, store.Options{})
	if err != nil {
		os.RemoveAll(dir) //nolint:errcheck // best-effort teardown
		return nil, nil, nil, err
	}
	for name, g := range map[string]*rdf.Graph{"ds1": ds.G1, "ds2": ds.G2} {
		src, err := set.AddSource(name)
		if err != nil {
			os.RemoveAll(dir) //nolint:errcheck // best-effort teardown
			return nil, nil, nil, err
		}
		g.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
			src.InsertIDs(s, p, o)
			return true
		})
	}
	if err := set.Compact(); err != nil {
		os.RemoveAll(dir) //nolint:errcheck // best-effort teardown
		return nil, nil, nil, err
	}
	cleanup = func() {
		set.Close()       //nolint:errcheck // read-only teardown
		os.RemoveAll(dir) //nolint:errcheck // best-effort teardown
	}
	return set.Source("ds1"), set.Source("ds2"), cleanup, nil
}

// RunQuality executes the standard pipeline for one profile:
// generate → PARIS → ALEX with oracle feedback until convergence.
func RunQuality(profileName string, opts Options) (*QualityRun, error) {
	opts.fill()
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
	}
	if opts.Scale != 1 {
		prof = prof.Scale(opts.Scale)
	}
	return RunQualityProfile(prof, opts)
}

// RunQualityProfile is RunQuality for an explicit profile value.
func RunQualityProfile(prof synth.Profile, opts Options) (*QualityRun, error) {
	opts.fill()
	ds := synth.Generate(prof)
	t1, t2, cleanup, err := opts.stores(ds)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	scored := paris.Link(t1, t2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	initialSet := links.NewSet()
	for i, s := range scored {
		initial[i] = s.Link
		initialSet.Add(s.Link)
	}

	cfg := core.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.Partitions = prof.Partitions
	cfg.Seed = prof.Seed
	if opts.Mutate != nil {
		opts.Mutate(&cfg)
	}

	buildStart := time.Now()
	sys := core.New(t1, t2, ds.Entities1, ds.Entities2, initial, cfg)
	buildTime := time.Since(buildStart)

	oracle := feedback.NewOracle(ds.GroundTruth, opts.ErrRate, rand.New(rand.NewSource(opts.Seed)))

	run := &QualityRun{
		Profile:     prof,
		GroundTruth: ds.GroundTruth.Len(),
		BuildTime:   buildTime,
	}
	run.Initial = eval.Compute(sys.Candidates(), ds.GroundTruth)
	run.Series.Append(run.Initial)

	runStart := time.Now()
	run.Result = sys.Run(oracle, func(st core.EpisodeStats) {
		m := eval.Compute(sys.Candidates(), ds.GroundTruth)
		run.Series.Append(m)
		run.Series.NegativeFeedbackPct = append(run.Series.NegativeFeedbackPct, st.NegativePct())
	})
	run.RunTime = time.Since(runStart)
	run.Final = run.Series.Last()

	final := sys.Candidates()
	for l := range final {
		if ds.GroundTruth.Has(l) && !initialSet.Has(l) {
			run.Discovered++
		}
	}
	return run, nil
}

// Report renders the run in the format printed by cmd/alexbench.
func (r *QualityRun) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s (%s)\n", r.Profile.Name, r.Profile.Description)
	fmt.Fprintf(&b, "ground truth links: %d  episode size: %d  partitions: %d\n",
		r.GroundTruth, r.Profile.EpisodeSize, r.Profile.Partitions)
	fmt.Fprintf(&b, "initial (PARIS): %v\n", r.Initial)
	fmt.Fprintf(&b, "final   (ALEX) : %v\n", r.Final)
	fmt.Fprintf(&b, "new correct links discovered: %d\n", r.Discovered)
	fmt.Fprintf(&b, "episodes: %d (converged=%v, relaxed<5%% at episode %d)\n",
		r.Result.Episodes, r.Result.Converged, r.Result.RelaxedEpisode)
	fmt.Fprintf(&b, "build %.2fs, run %.2fs (%.2fs/episode)\n",
		r.BuildTime.Seconds(), r.RunTime.Seconds(), r.RunTime.Seconds()/maxf(1, float64(r.Result.Episodes)))
	b.WriteString(r.Series.Table())
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
