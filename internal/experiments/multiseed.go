package experiments

import (
	"fmt"
	"math"
	"strings"

	"alex/internal/synth"
)

// SeedStats aggregates a metric over runs with different random seeds.
type SeedStats struct {
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	N    int
}

func newSeedStats(xs []float64) SeedStats {
	st := SeedStats{N: len(xs)}
	if len(xs) == 0 {
		return st
	}
	st.Min, st.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		v := 0.0
		for _, x := range xs {
			d := x - st.Mean
			v += d * d
		}
		st.Std = math.Sqrt(v / float64(len(xs)-1))
	}
	return st
}

func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f ± %.3f (min %.3f, max %.3f, n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// MultiSeedResult reports final-quality statistics over several seeds.
// The paper's figures are single runs; this quantifies how much of the
// trajectory is seed luck.
type MultiSeedResult struct {
	Profile  string
	F1       SeedStats
	Recall   SeedStats
	Episodes SeedStats
	Runs     []*QualityRun
}

// RunMultiSeed runs a profile with n different oracle/driver seeds.
func RunMultiSeed(profileName string, opts Options, n int) (*MultiSeedResult, error) {
	if n < 1 {
		n = 3
	}
	res := &MultiSeedResult{Profile: profileName}
	var f1s, recalls, eps []float64
	for i := 0; i < n; i++ {
		o := opts
		o.fill()
		o.Seed = o.Seed + int64(i)*1000
		prof, ok := synth.ProfileByName(profileName)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
		}
		if o.Scale != 1 {
			prof = prof.Scale(o.Scale)
		}
		// Vary the system seed too, so partition RNG streams differ.
		prof.Seed += int64(i) * 7777
		run, err := RunQualityProfile(prof, o)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
		f1s = append(f1s, run.Final.F1)
		recalls = append(recalls, run.Final.Recall)
		eps = append(eps, float64(run.Result.Episodes))
	}
	res.F1 = newSeedStats(f1s)
	res.Recall = newSeedStats(recalls)
	res.Episodes = newSeedStats(eps)
	return res, nil
}

// Report renders the multi-seed statistics.
func (r *MultiSeedResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s over %d seeds\n", r.Profile, r.F1.N)
	fmt.Fprintf(&b, "final F-measure : %v\n", r.F1)
	fmt.Fprintf(&b, "final recall    : %v\n", r.Recall)
	fmt.Fprintf(&b, "episodes        : %v\n", r.Episodes)
	return b.String()
}

// SummaryRow condenses one profile's quality run for the all-pairs table.
type SummaryRow struct {
	Profile    string
	Initial    string
	Final      string
	Episodes   int
	Relaxed    int
	Discovered int
}

// Summary runs every built-in profile once and tabulates initial vs
// final quality — the one-screen version of Figures 2-4 and 8.
func Summary(opts Options) ([]SummaryRow, error) {
	var rows []SummaryRow
	for _, p := range synth.Profiles() {
		if p.Skewed {
			continue // benchmark-only stress profile, not part of the paper's figures
		}
		run, err := RunQuality(p.Name, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SummaryRow{
			Profile:    p.Name,
			Initial:    fmt.Sprintf("P=%.2f R=%.2f", run.Initial.Precision, run.Initial.Recall),
			Final:      fmt.Sprintf("P=%.2f R=%.2f F=%.2f", run.Final.Precision, run.Final.Recall, run.Final.F1),
			Episodes:   run.Result.Episodes,
			Relaxed:    run.Result.RelaxedEpisode,
			Discovered: run.Discovered,
		})
	}
	return rows, nil
}

// FormatSummary renders the all-pairs table.
func FormatSummary(rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-18s %-24s %-9s %-8s %s\n", "pair", "initial (PARIS)", "final (ALEX)", "episodes", "relaxed", "discovered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-18s %-24s %-9d %-8d %d\n", r.Profile, r.Initial, r.Final, r.Episodes, r.Relaxed, r.Discovered)
	}
	return b.String()
}
