package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/feature"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/synth"
)

// Table1Row is one dataset of Table 1.
type Table1Row struct {
	Profile   string
	Field     string
	Triples1  int
	Triples2  int
	Entities1 int
	Entities2 int
	GTLinks   int
}

// Table1 reproduces the dataset inventory (Table 1): the synthetic
// stand-ins for each dataset pair with their triple and entity counts.
func Table1(scale float64) []Table1Row {
	if scale == 0 {
		scale = 1
	}
	var rows []Table1Row
	for _, p := range synth.Profiles() {
		if p.Skewed {
			continue // benchmark-only stress profile, not a paper dataset pair
		}
		prof := p
		if scale != 1 {
			prof = prof.Scale(scale)
		}
		ds := synth.Generate(prof)
		rows = append(rows, Table1Row{
			Profile:   p.Name,
			Field:     p.Description,
			Triples1:  ds.G1.Size(),
			Triples2:  ds.G2.Size(),
			Entities1: len(ds.Entities1),
			Entities2: len(ds.Entities2),
			GTLinks:   ds.GroundTruth.Len(),
		})
	}
	return rows
}

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %-10s %-10s %-10s %-8s\n", "pair", "triples1", "triples2", "entities1", "entities2", "gt-links")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-10d %-10d %-10d %-10d %-8d\n", r.Profile, r.Triples1, r.Triples2, r.Entities1, r.Entities2, r.GTLinks)
	}
	return b.String()
}

// Fig5Result reports the search-space filtering experiment (Figure 5):
// the unfiltered cross product of the first partition against the whole
// of dataset 2, the θ-filtered space, and the ground-truth share.
type Fig5Result struct {
	Profile              string
	TotalPairs           int // Figure 5a left bar
	FilteredPairs        int // Figure 5a right bar / Figure 5b left bar
	GroundTruth          int // Figure 5b right bar (links with E1 in partition 0)
	ReductionPct         float64
	GTShareOfFilteredPct float64
}

// Fig5 measures the filtering optimization on the first partition of a
// profile (§6.1, Figures 5a and 5b).
func Fig5(profileName string, scale float64) (*Fig5Result, error) {
	if scale == 0 {
		scale = 1
	}
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
	}
	prof = prof.Scale(scale)
	ds := synth.Generate(prof)

	cfg := core.DefaultConfig()

	// Partition 0 only, as in the paper's Figure 5.
	part0 := feature.PartitionRoundRobin(ds.Entities1, prof.Partitions)[0]
	inPart := map[rdf.ID]bool{}
	for _, e := range part0 {
		inPart[e] = true
	}
	gt := 0
	for l := range ds.GroundTruth {
		if inPart[l.E1] {
			gt++
		}
	}

	sp := feature.Build(ds.G1, ds.G2, part0, ds.Entities2, feature.Options{Theta: cfg.Theta})
	res := &Fig5Result{
		Profile:       prof.Name,
		TotalPairs:    sp.TotalPairs,
		FilteredPairs: sp.Len(),
		GroundTruth:   gt,
	}
	if res.TotalPairs > 0 {
		res.ReductionPct = 100 * (1 - float64(res.FilteredPairs)/float64(res.TotalPairs))
	}
	if res.FilteredPairs > 0 {
		res.GTShareOfFilteredPct = 100 * float64(res.GroundTruth) / float64(res.FilteredPairs)
	}
	return res, nil
}

// Report renders the Fig5 result.
func (r *Fig5Result) Report() string {
	return fmt.Sprintf(
		"profile %s, partition 0\n"+
			"total possible links : %d\n"+
			"filtered space       : %d (%.1f%% reduction)   [Figure 5a]\n"+
			"ground truth links   : %d (%.2f%% of filtered) [Figure 5b]\n",
		r.Profile, r.TotalPairs, r.FilteredPairs, r.ReductionPct, r.GroundTruth, r.GTShareOfFilteredPct)
}

// ComparisonRun holds two labelled quality runs on the same profile,
// used by the blacklist (Fig 6), rollback (Fig 7), incorrect feedback
// (Fig 9) and ablation experiments.
type ComparisonRun struct {
	Profile string
	Labels  [2]string
	Runs    [2]*QualityRun
}

// CommonEpisodes returns the episode span shared by both runs; means
// over this prefix are comparable even when one configuration runs much
// longer than the other.
func (c *ComparisonRun) CommonEpisodes() int {
	n := len(c.Runs[0].Series.NegativeFeedbackPct)
	if m := len(c.Runs[1].Series.NegativeFeedbackPct); m < n {
		n = m
	}
	return n
}

// MeanNegativePct returns the mean negative-feedback percentage of run
// i over the common episode prefix.
func (c *ComparisonRun) MeanNegativePct(i int) float64 {
	n := c.CommonEpisodes()
	if n == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.Runs[i].Series.NegativeFeedbackPct[:n] {
		s += v
	}
	return s / float64(n)
}

// Report renders both series side by side.
func (c *ComparisonRun) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: %s vs %s\n\n", c.Profile, c.Labels[0], c.Labels[1])
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&b, "--- %s ---\n", c.Labels[i])
		fmt.Fprintf(&b, "final: %v after %d episodes (converged=%v)\n",
			c.Runs[i].Final, c.Runs[i].Result.Episodes, c.Runs[i].Result.Converged)
		fmt.Fprintf(&b, "mean negative feedback over first %d episodes: %.1f%%\n",
			c.CommonEpisodes(), c.MeanNegativePct(i))
		b.WriteString(c.Runs[i].Series.Table())
		b.WriteString("\n")
	}
	return b.String()
}

// Fig6Blacklist compares ALEX with and without the blacklist
// optimization on a profile (Figures 6a and 6b): similar F-measure, but
// markedly more negative feedback without the blacklist.
func Fig6Blacklist(profileName string, opts Options) (*ComparisonRun, error) {
	with, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.UseBlacklist = true }))
	if err != nil {
		return nil, err
	}
	without, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.UseBlacklist = false }))
	if err != nil {
		return nil, err
	}
	return &ComparisonRun{Profile: profileName, Labels: [2]string{"with blacklist", "without blacklist"}, Runs: [2]*QualityRun{with, without}}, nil
}

// Fig7Result captures the rollback experiment (Figure 7).
type Fig7Result struct {
	Profile string
	// WithRollback is the default configuration's run (cf. Figure 2a).
	WithRollback *QualityRun
	// WithoutRollback shows the collapse (Figure 7a).
	WithoutRollback *QualityRun
	// PartitionFinalF is the final F-measure of each partition without
	// rollback: some recover, some do not (Figures 7b and 7c).
	PartitionFinalF []float64
}

// Fig7Rollback runs the rollback on/off comparison. The episode size is
// quartered relative to the profile default: the figure's phenomenon —
// wrong decisions flooding more links than link-by-link negative
// feedback can remove — appears when exploration floods outpace the
// feedback budget, which is the regime of the paper's full-size data.
// An explicit opts.Mutate can override the episode size.
func Fig7Rollback(profileName string, opts Options) (*Fig7Result, error) {
	prev := opts.Mutate
	opts.Mutate = func(c *core.Config) {
		if c.EpisodeSize >= 4 {
			c.EpisodeSize /= 4
		}
		if prev != nil {
			prev(c)
		}
	}
	with, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.UseRollback = true }))
	if err != nil {
		return nil, err
	}
	// Without rollback, run with per-partition final inspection.
	opts.fill()
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
	}
	if opts.Scale != 1 {
		prof = prof.Scale(opts.Scale)
	}
	ds := synth.Generate(prof)
	t1, t2, cleanup, err := opts.stores(ds)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	scored := paris.Link(t1, t2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	initialSet := links.NewSet()
	for i, s := range scored {
		initial[i] = s.Link
		initialSet.Add(s.Link)
	}
	cfg := core.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.Partitions = prof.Partitions
	cfg.Seed = prof.Seed
	cfg.UseRollback = false
	if opts.Mutate != nil {
		opts.Mutate(&cfg)
	}
	cfg.UseRollback = false
	sys := core.New(t1, t2, ds.Entities1, ds.Entities2, initial, cfg)
	oracle := feedback.NewOracle(ds.GroundTruth, opts.ErrRate, rand.New(rand.NewSource(opts.Seed)))

	without := &QualityRun{Profile: prof, GroundTruth: ds.GroundTruth.Len()}
	without.Initial = eval.Compute(sys.Candidates(), ds.GroundTruth)
	without.Series.Append(without.Initial)
	start := time.Now()
	without.Result = sys.Run(oracle, func(st core.EpisodeStats) {
		m := eval.Compute(sys.Candidates(), ds.GroundTruth)
		without.Series.Append(m)
		without.Series.NegativeFeedbackPct = append(without.Series.NegativeFeedbackPct, st.NegativePct())
	})
	without.RunTime = time.Since(start)
	without.Final = without.Series.Last()
	for l := range sys.Candidates() {
		if ds.GroundTruth.Has(l) && !initialSet.Has(l) {
			without.Discovered++
		}
	}

	res := &Fig7Result{Profile: profileName, WithRollback: with, WithoutRollback: without}
	// Per-partition final quality (Figures 7b/7c): partition GT =
	// ground-truth links rooted at that partition's entities, using the
	// same round-robin placement as the system.
	partOf := map[rdf.ID]int{}
	for i, e := range ds.Entities1 {
		partOf[e] = i % prof.Partitions
	}
	for pi := 0; pi < sys.Partitions(); pi++ {
		pc := sys.PartitionCandidates(pi)
		pgt := links.NewSet()
		for l := range ds.GroundTruth {
			if partOf[l.E1] == pi {
				pgt.Add(l)
			}
		}
		m := eval.Compute(pc, pgt)
		res.PartitionFinalF = append(res.PartitionFinalF, m.F1)
	}
	return res, nil
}

// Report renders the Fig7 result.
func (r *Fig7Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: rollback on vs off\n\n", r.Profile)
	fmt.Fprintf(&b, "--- with rollback (default) ---\nfinal: %v after %d episodes (converged=%v)\n%s\n",
		r.WithRollback.Final, r.WithRollback.Result.Episodes, r.WithRollback.Result.Converged,
		r.WithRollback.Series.Table())
	fmt.Fprintf(&b, "--- without rollback (Figure 7a) ---\nfinal: %v after %d episodes (converged=%v)\n%s\n",
		r.WithoutRollback.Final, r.WithoutRollback.Result.Episodes, r.WithoutRollback.Result.Converged,
		r.WithoutRollback.Series.Table())
	b.WriteString("per-partition final F without rollback (Figures 7b/7c):\n")
	for pi, f := range r.PartitionFinalF {
		fmt.Fprintf(&b, "  partition %2d: F=%.3f\n", pi, f)
	}
	return b.String()
}

// Fig9IncorrectFeedback compares correct feedback to a 10% error rate
// (Appendix C, Figure 9).
func Fig9IncorrectFeedback(profileName string, opts Options) (*ComparisonRun, error) {
	correct, err := RunQuality(profileName, opts)
	if err != nil {
		return nil, err
	}
	noisy := opts
	noisy.ErrRate = 0.10
	wrong, err := RunQuality(profileName, noisy)
	if err != nil {
		return nil, err
	}
	return &ComparisonRun{Profile: profileName, Labels: [2]string{"correct feedback", "10% incorrect feedback"}, Runs: [2]*QualityRun{correct, wrong}}, nil
}

// CrowdResult compares three feedback channels under the same 10%
// per-user error rate: a single user, and majority-vote crowds of 3 and
// 9 users — the §6.3 "refine the feedback ... obtained from a large
// number of users" idea made concrete.
type CrowdResult struct {
	Profile string
	Labels  []string
	Runs    []*QualityRun
}

// CrowdFeedback runs the crowd-vote comparison on a profile.
func CrowdFeedback(profileName string, opts Options) (*CrowdResult, error) {
	opts.fill()
	res := &CrowdResult{Profile: profileName}
	configs := []struct {
		label  string
		voters int
	}{
		{"single user (10% error)", 1},
		{"crowd of 3 (10% each)", 3},
		{"crowd of 9 (10% each)", 9},
	}
	for _, c := range configs {
		c := c
		run, err := runQualityWithJudger(profileName, opts, func(ds *synth.Dataset, seed int64) feedback.Judger {
			return feedback.NewCrowd(ds.GroundTruth, 0.10, c.voters, rand.New(rand.NewSource(seed)))
		})
		if err != nil {
			return nil, err
		}
		res.Labels = append(res.Labels, c.label)
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// Report renders the crowd comparison.
func (r *CrowdResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: feedback-quality refinement via crowd voting\n\n", r.Profile)
	fmt.Fprintf(&b, "%-26s %-8s %-8s %-8s %-9s\n", "channel", "final-P", "final-R", "final-F", "episodes")
	for i, run := range r.Runs {
		fmt.Fprintf(&b, "%-26s %-8.3f %-8.3f %-8.3f %-9d\n",
			r.Labels[i], run.Final.Precision, run.Final.Recall, run.Final.F1, run.Result.Episodes)
	}
	return b.String()
}

// runQualityWithJudger is RunQuality with a custom feedback channel.
func runQualityWithJudger(profileName string, opts Options, mkJudger func(*synth.Dataset, int64) feedback.Judger) (*QualityRun, error) {
	opts.fill()
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
	}
	if opts.Scale != 1 {
		prof = prof.Scale(opts.Scale)
	}
	ds := synth.Generate(prof)
	t1, t2, cleanup, err := opts.stores(ds)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	scored := paris.Link(t1, t2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	initialSet := links.NewSet()
	for i, s := range scored {
		initial[i] = s.Link
		initialSet.Add(s.Link)
	}
	cfg := core.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.Partitions = prof.Partitions
	cfg.Seed = prof.Seed
	if opts.Mutate != nil {
		opts.Mutate(&cfg)
	}
	start := time.Now()
	sys := core.New(t1, t2, ds.Entities1, ds.Entities2, initial, cfg)
	run := &QualityRun{Profile: prof, GroundTruth: ds.GroundTruth.Len(), BuildTime: time.Since(start)}
	run.Initial = eval.Compute(sys.Candidates(), ds.GroundTruth)
	run.Series.Append(run.Initial)
	judger := mkJudger(ds, opts.Seed)
	runStart := time.Now()
	run.Result = sys.Run(judger, func(st core.EpisodeStats) {
		m := eval.Compute(sys.Candidates(), ds.GroundTruth)
		run.Series.Append(m)
		run.Series.NegativeFeedbackPct = append(run.Series.NegativeFeedbackPct, st.NegativePct())
	})
	run.RunTime = time.Since(runStart)
	run.Final = run.Series.Last()
	for l := range sys.Candidates() {
		if ds.GroundTruth.Has(l) && !initialSet.Has(l) {
			run.Discovered++
		}
	}
	return run, nil
}

// SweepPoint is one configuration of a parameter sweep.
type SweepPoint struct {
	Label string
	Run   *QualityRun
}

// Sweep holds a parameter sweep over one profile.
type Sweep struct {
	Profile string
	Param   string
	Points  []SweepPoint
}

// Report renders the sweep summary and per-point series.
func (s *Sweep) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: sweep over %s\n\n", s.Profile, s.Param)
	fmt.Fprintf(&b, "%-14s %-8s %-8s %-8s %-10s %-10s %-10s\n", s.Param, "final-P", "final-R", "final-F", "episodes", "neg-fb%", "time/ep")
	for _, p := range s.Points {
		avgNeg := 0.0
		for _, v := range p.Run.Series.NegativeFeedbackPct {
			avgNeg += v
		}
		if n := len(p.Run.Series.NegativeFeedbackPct); n > 0 {
			avgNeg /= float64(n)
		}
		perEp := p.Run.RunTime.Seconds() / maxf(1, float64(p.Run.Result.Episodes))
		fmt.Fprintf(&b, "%-14s %-8.3f %-8.3f %-8.3f %-10d %-10.1f %-10.3f\n",
			p.Label, p.Run.Final.Precision, p.Run.Final.Recall, p.Run.Final.F1,
			p.Run.Result.Episodes, avgNeg, perEp)
	}
	b.WriteString("\nper-point series:\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "--- %s = %s ---\n%s\n", s.Param, p.Label, p.Run.Series.Table())
	}
	return b.String()
}

// Fig10StepSize sweeps the step size (Appendix D, Figure 10).
func Fig10StepSize(profileName string, opts Options, steps []float64) (*Sweep, error) {
	if len(steps) == 0 {
		steps = []float64{0.01, 0.05, 0.1}
	}
	sw := &Sweep{Profile: profileName, Param: "step-size"}
	for _, st := range steps {
		st := st
		run, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.StepSize = st }))
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Label: fmt.Sprintf("%.2f", st), Run: run})
	}
	return sw, nil
}

// Fig11EpisodeSize sweeps the episode size (Appendix D, Figure 11).
func Fig11EpisodeSize(profileName string, opts Options, sizes []int) (*Sweep, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 1000, 1500}
	}
	sw := &Sweep{Profile: profileName, Param: "episode-size"}
	for _, sz := range sizes {
		sz := sz
		run, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.EpisodeSize = sz }))
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Label: fmt.Sprintf("%d", sz), Run: run})
	}
	return sw, nil
}

// AblationPolicy compares the learned ε-greedy policy against a uniform
// random action choice — an ablation beyond the paper's figures that
// isolates the value of the reinforcement learning component.
func AblationPolicy(profileName string, opts Options) (*ComparisonRun, error) {
	learned, err := RunQuality(profileName, opts)
	if err != nil {
		return nil, err
	}
	uniform, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.UniformPolicy = true }))
	if err != nil {
		return nil, err
	}
	return &ComparisonRun{Profile: profileName, Labels: [2]string{"learned policy", "uniform random policy"}, Runs: [2]*QualityRun{learned, uniform}}, nil
}

// AblationEpsilon sweeps the exploration rate ε.
func AblationEpsilon(profileName string, opts Options, eps []float64) (*Sweep, error) {
	if len(eps) == 0 {
		eps = []float64{0.01, 0.1, 0.3}
	}
	sw := &Sweep{Profile: profileName, Param: "epsilon"}
	for _, e := range eps {
		e := e
		run, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.Epsilon = e }))
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Label: fmt.Sprintf("%.2f", e), Run: run})
	}
	return sw, nil
}

// AblationTheta sweeps the filtering threshold θ.
func AblationTheta(profileName string, opts Options, thetas []float64) (*Sweep, error) {
	if len(thetas) == 0 {
		thetas = []float64{0.2, 0.3, 0.5}
	}
	sw := &Sweep{Profile: profileName, Param: "theta"}
	for _, th := range thetas {
		th := th
		run, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.Theta = th }))
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Label: fmt.Sprintf("%.2f", th), Run: run})
	}
	return sw, nil
}

// AblationRollbackThreshold sweeps the rollback trigger count.
func AblationRollbackThreshold(profileName string, opts Options, thresholds []int) (*Sweep, error) {
	if len(thresholds) == 0 {
		thresholds = []int{1, 3, 10}
	}
	sw := &Sweep{Profile: profileName, Param: "rollback-threshold"}
	for _, th := range thresholds {
		th := th
		run, err := RunQuality(profileName, withMutate(opts, func(c *core.Config) { c.RollbackThreshold = th }))
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Label: fmt.Sprintf("%d", th), Run: run})
	}
	return sw, nil
}

// TimingRow reports the §7.3 execution-time experiment for one profile.
type TimingRow struct {
	Profile    string
	Episodes   int
	Total      time.Duration
	PerEpisode time.Duration
}

// ExecutionTime measures wall-clock per episode for a batch-mode profile
// and a specific-domain profile (§7.3: minutes per episode in batch
// mode, seconds total in interactive mode — here both scaled down).
func ExecutionTime(profileNames []string, opts Options) ([]TimingRow, error) {
	if len(profileNames) == 0 {
		profileNames = []string{"dbpedia-nytimes", "dbpedia-nba-nytimes"}
	}
	var rows []TimingRow
	for _, name := range profileNames {
		run, err := RunQuality(name, opts)
		if err != nil {
			return nil, err
		}
		eps := run.Result.Episodes
		if eps == 0 {
			eps = 1
		}
		rows = append(rows, TimingRow{
			Profile:    name,
			Episodes:   run.Result.Episodes,
			Total:      run.BuildTime + run.RunTime,
			PerEpisode: time.Duration(int64(run.RunTime) / int64(eps)),
		})
	}
	return rows, nil
}

// FormatTiming renders timing rows.
func FormatTiming(rows []TimingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s %-12s %-12s\n", "profile", "episodes", "total", "per-episode")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-10d %-12s %-12s\n", r.Profile, r.Episodes, r.Total.Round(time.Millisecond), r.PerEpisode.Round(time.Millisecond))
	}
	return b.String()
}

func withMutate(opts Options, fn func(*core.Config)) Options {
	prev := opts.Mutate
	opts.Mutate = func(c *core.Config) {
		if prev != nil {
			prev(c)
		}
		fn(c)
	}
	return opts
}
