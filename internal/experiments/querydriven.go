package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/synth"
)

// RunQueryDriven runs the full Figure-1 loop instead of the evaluation
// shortcut: feedback is not given on sampled links directly, but on the
// answers of federated SPARQL queries whose evaluation crossed sameAs
// links. A simulated user approves an answer exactly when every link it
// used is in the ground truth (errors injected at opts.ErrRate), and
// federation.Approve/Reject translate that into link feedback — the
// system under test is the entire pipeline.
func RunQueryDriven(profileName string, opts Options) (*QualityRun, error) {
	opts.fill()
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", profileName)
	}
	if opts.Scale != 1 {
		prof = prof.Scale(opts.Scale)
	}
	ds := synth.Generate(prof)

	t1, t2, cleanup, err := opts.stores(ds)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	scored := paris.Link(t1, t2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	initialSet := links.NewSet()
	for i, s := range scored {
		initial[i] = s.Link
		initialSet.Add(s.Link)
	}

	cfg := core.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.Partitions = prof.Partitions
	cfg.Seed = prof.Seed
	// Answer-level judgments against the ground truth are definitive
	// (any error injection happens at the answer, below), so the first
	// rejection of a link is trustworthy: the literal §6.3 blacklist
	// rule converges much faster here.
	cfg.BlacklistMargin = 1
	if opts.Mutate != nil {
		opts.Mutate(&cfg)
	}

	buildStart := time.Now()
	sys := core.New(t1, t2, ds.Entities1, ds.Entities2, initial, cfg)
	run := &QualityRun{Profile: prof, GroundTruth: ds.GroundTruth.Len(), BuildTime: time.Since(buildStart)}
	run.Initial = eval.Compute(sys.Candidates(), ds.GroundTruth)
	run.Series.Append(run.Initial)

	fed := federation.New(ds.Dict)
	fed.SetOptions(federation.Options{Workers: cfg.QueryWorkers, ReplanEvery: cfg.QueryReplanEvery})
	fed.SetPlanCache(federation.NewPlanCache(0))
	if err := fed.AddSource("ds1", t1); err != nil {
		return nil, err
	}
	if err := fed.AddSource("ds2", t2); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	// Query templates ask, for a dataset-1 entity, about a dataset-2
	// property — answerable only across a sameAs link.
	ds2Preds := []string{synth.P2Group.Value, synth.P2Born.Value, synth.P2Place.Value}

	runStart := time.Now()
	maxEpisodes := cfg.MaxEpisodes
	need := cfg.ConvergenceEpisodes
	if need < 1 {
		need = 1
	}
	unchanged := 0
	for ep := 0; ep < maxEpisodes; ep++ {
		// The query layer sees the current candidate links.
		fed.SetLinks(sys.Candidates())
		sys.BeginEpisode()
		feedbackCount, negative := 0, 0

		for i := 0; i < cfg.EpisodeSize; i++ {
			l, ok := sys.SampleCandidate()
			if !ok {
				break
			}
			// A user whose query touches the sampled link's entity.
			e1 := ds.Dict.Term(l.E1)
			pred := ds2Preds[rng.Intn(len(ds2Preds))]
			query := fmt.Sprintf(`SELECT ?v WHERE { <%s> <%s> ?v . }`, e1.Value, pred)
			res, err := fed.Query(query)
			if err != nil {
				return nil, fmt.Errorf("experiments: federated query: %w", err)
			}
			// The user evaluates every returned answer, as in §3.2.
			for _, row := range res.Rows {
				if row.Used.Len() == 0 {
					continue // answered within one dataset; no link feedback
				}
				// The user knows whether the answer is right: it is
				// right when every link it used is a true link.
				correct := true
				for ul := range row.Used {
					if !ds.GroundTruth.Has(ul) {
						correct = false
						break
					}
				}
				if opts.ErrRate > 0 && rng.Float64() < opts.ErrRate {
					correct = !correct
				}
				feedbackCount++
				if correct {
					federation.Approve(row, sys)
				} else {
					negative++
					federation.Reject(row, sys)
				}
			}
		}

		st := sys.FinishEpisode()
		st.Feedback = feedbackCount
		st.Negative = negative
		run.Result.Stats = append(run.Result.Stats, st)
		m := eval.Compute(sys.Candidates(), ds.GroundTruth)
		run.Series.Append(m)
		run.Series.NegativeFeedbackPct = append(run.Series.NegativeFeedbackPct, st.NegativePct())

		if st.ChangedFrac == 0 {
			unchanged++
			if unchanged >= need {
				run.Result.Converged = true
				break
			}
		} else {
			unchanged = 0
		}
	}
	run.RunTime = time.Since(runStart)
	run.Result.Episodes = sys.Episode()
	run.Final = run.Series.Last()
	for l := range sys.Candidates() {
		if ds.GroundTruth.Has(l) && !initialSet.Has(l) {
			run.Discovered++
		}
	}
	return run, nil
}
