package sparql

import (
	"fmt"
	"testing"

	"alex/internal/rdf"
)

func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s, p string, o rdf.Term) {
		g.Insert(rdf.Triple{S: rdf.IRI("http://ex/" + s), P: rdf.IRI("http://ex/" + p), O: o})
	}
	add("alice", "name", rdf.Literal("Alice"))
	add("alice", "age", rdf.TypedLiteral("30", rdf.XSDInteger))
	add("alice", "knows", rdf.IRI("http://ex/bob"))
	add("bob", "name", rdf.Literal("Bob"))
	add("bob", "age", rdf.TypedLiteral("25", rdf.XSDInteger))
	add("carol", "name", rdf.Literal("Carol"))
	add("carol", "age", rdf.TypedLiteral("35", rdf.XSDInteger))
	add("alice", "type", rdf.IRI("http://ex/Person"))
	add("bob", "type", rdf.IRI("http://ex/Person"))
	return g
}

func mustExec(t *testing.T, g *rdf.Graph, q string) *Result {
	t.Helper()
	res, err := Execute(g, q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func TestExecuteSimpleBGP(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n . }`)
	if len(res.Rows) != 1 || res.Rows[0]["n"] != rdf.Literal("Alice") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecuteJoin(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?friendName WHERE {
		<http://ex/alice> <http://ex/knows> ?f .
		?f <http://ex/name> ?friendName .
	}`)
	if len(res.Rows) != 1 || res.Rows[0]["friendName"] != rdf.Literal("Bob") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecuteFilterNumeric(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p WHERE { ?p <http://ex/age> ?a . FILTER(?a > 28) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (alice, carol)", len(res.Rows))
	}
}

func TestExecuteFilterStringFuncs(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p WHERE {
		?p <http://ex/name> ?n .
		FILTER(CONTAINS(LCASE(STR(?n)), "ali"))
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestExecuteOptional(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p ?f WHERE {
		?p <http://ex/name> ?n .
		OPTIONAL { ?p <http://ex/knows> ?f . }
	}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	withFriend := 0
	for _, r := range res.Rows {
		if _, ok := r["f"]; ok {
			withFriend++
		}
	}
	if withFriend != 1 {
		t.Fatalf("rows with friend = %d, want 1", withFriend)
	}
}

func TestExecuteUnion(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p WHERE {
		{ ?p <http://ex/name> "Alice" . } UNION { ?p <http://ex/name> "Bob" . }
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestExecuteDistinctOrderLimit(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT DISTINCT ?a WHERE { ?p <http://ex/age> ?a . } ORDER BY DESC(?a) LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["a"].Value != "35" || res.Rows[1]["a"].Value != "30" {
		t.Fatalf("ordering wrong: %+v", res.Rows)
	}
}

func TestExecuteOffset(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?a WHERE { ?p <http://ex/age> ?a . } ORDER BY ?a OFFSET 1`)
	if len(res.Rows) != 2 || res.Rows[0]["a"].Value != "30" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	res = mustExec(t, g, `SELECT ?a WHERE { ?p <http://ex/age> ?a . } OFFSET 100`)
	if len(res.Rows) != 0 {
		t.Fatalf("offset beyond end returned %d rows", len(res.Rows))
	}
}

func TestExecuteSelectStar(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT * WHERE { ?p <http://ex/name> ?n . }`)
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExecuteNoMatches(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?x WHERE { ?x <http://ex/missing> ?y . }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}

func TestExecuteSameVarTwice(t *testing.T) {
	g := rdf.NewGraph()
	g.Insert(rdf.Triple{S: rdf.IRI("http://a"), P: rdf.IRI("http://p"), O: rdf.IRI("http://a")})
	g.Insert(rdf.Triple{S: rdf.IRI("http://a"), P: rdf.IRI("http://p"), O: rdf.IRI("http://b")})
	res := mustExec(t, g, `SELECT ?x WHERE { ?x <http://p> ?x . }`)
	if len(res.Rows) != 1 || res.Rows[0]["x"] != rdf.IRI("http://a") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecuteBoundAndNot(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p WHERE {
		?p <http://ex/name> ?n .
		OPTIONAL { ?p <http://ex/knows> ?f . }
		FILTER(!BOUND(?f))
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (bob, carol)", len(res.Rows))
	}
}

func TestExecuteRegexSubset(t *testing.T) {
	g := testGraph()
	res := mustExec(t, g, `SELECT ?p WHERE {
		?p <http://ex/name> ?n . FILTER(REGEX(?n, "^A", "i"))
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestExecuteTypeQuery(t *testing.T) {
	g := rdf.NewGraph()
	g.Insert(rdf.Triple{S: rdf.IRI("http://ex/alice"), P: rdf.IRI(rdf.RDFType), O: rdf.IRI("http://ex/Person")})
	res := mustExec(t, g, `SELECT ?x WHERE { ?x a <http://ex/Person> . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestExecuteLargerJoinOrder(t *testing.T) {
	// A chain query where naive left-to-right order would be expensive:
	// verifies the greedy selectivity ordering still yields correct results.
	g := rdf.NewGraph()
	for i := 0; i < 50; i++ {
		g.Insert(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/%d", i)),
			P: rdf.IRI("http://p/knows"),
			O: rdf.IRI(fmt.Sprintf("http://e/%d", (i+1)%50)),
		})
		g.Insert(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/%d", i)),
			P: rdf.IRI("http://p/name"),
			O: rdf.Literal(fmt.Sprintf("entity-%d", i)),
		})
	}
	res := mustExec(t, g, `SELECT ?n2 WHERE {
		?a <http://p/name> "entity-7" .
		?a <http://p/knows> ?b .
		?b <http://p/name> ?n2 .
	}`)
	if len(res.Rows) != 1 || res.Rows[0]["n2"] != rdf.Literal("entity-8") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}
