package sparql

import (
	"fmt"
	"strings"

	"alex/internal/rdf"
)

// Parse parses a SPARQL SELECT query from the supported subset.
func Parse(query string) (*Query, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sparql: expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("sparql: expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: p.prefixes}

	for p.cur().kind == tokKeyword && p.cur().text == "PREFIX" {
		p.next()
		name, err := p.expect(tokPName, "prefix name")
		if err != nil {
			return nil, err
		}
		if !strings.HasSuffix(name.text, ":") {
			return nil, fmt.Errorf("sparql: prefix name %q must end with ':'", name.text)
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return nil, err
		}
		p.prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
	}

	if p.cur().kind == tokKeyword && p.cur().text == "ASK" {
		p.next()
		q.Form = FormAsk
	} else {
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		if p.cur().kind == tokKeyword && p.cur().text == "DISTINCT" {
			p.next()
			q.Distinct = true
		}
		if err := p.projection(q); err != nil {
			return nil, err
		}
	}

	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.next()
	}
	where, err := p.group()
	if err != nil {
		return nil, err
	}
	q.Where = where

	for {
		t := p.cur()
		if t.kind != tokKeyword {
			break
		}
		switch t.text {
		case "GROUP":
			p.next()
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for p.cur().kind == tokVar {
				q.GroupBy = append(q.GroupBy, p.next().text)
			}
			if len(q.GroupBy) == 0 {
				return nil, fmt.Errorf("sparql: empty GROUP BY")
			}
		case "ORDER":
			p.next()
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				k, ok, err := p.orderKey()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				q.OrderBy = append(q.OrderBy, k)
			}
			if len(q.OrderBy) == 0 {
				return nil, fmt.Errorf("sparql: empty ORDER BY")
			}
		case "LIMIT":
			p.next()
			n, err := p.expect(tokNumber, "limit count")
			if err != nil {
				return nil, err
			}
			q.Limit = atoiStrict(n.text)
			if q.Limit < 0 {
				return nil, fmt.Errorf("sparql: invalid LIMIT %q", n.text)
			}
		case "OFFSET":
			p.next()
			n, err := p.expect(tokNumber, "offset count")
			if err != nil {
				return nil, err
			}
			q.Offset = atoiStrict(n.text)
			if q.Offset < 0 {
				return nil, fmt.Errorf("sparql: invalid OFFSET %q", n.text)
			}
		default:
			return nil, fmt.Errorf("sparql: unexpected %s", t)
		}
	}

	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sparql: trailing input at %s", p.cur())
	}
	if err := validateGrouping(q); err != nil {
		return nil, err
	}
	return q, nil
}

// projection parses the SELECT clause: '*', plain variables, and
// aggregate expressions "(FUNC([DISTINCT] ?v|*) AS ?name)".
func (p *parser) projection(q *Query) error {
	if p.cur().kind == tokStar {
		p.next()
		return nil
	}
	for {
		switch p.cur().kind {
		case tokVar:
			q.Vars = append(q.Vars, p.next().text)
		case tokLParen:
			p.next()
			spec, err := p.aggSpec()
			if err != nil {
				return err
			}
			q.Aggregates = append(q.Aggregates, spec)
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
		default:
			if len(q.Vars) == 0 && len(q.Aggregates) == 0 {
				return fmt.Errorf("sparql: expected projection, got %s", p.cur())
			}
			return nil
		}
	}
}

func (p *parser) aggSpec() (AggSpec, error) {
	t := p.next()
	if t.kind != tokKeyword {
		return AggSpec{}, fmt.Errorf("sparql: expected aggregate function, got %s", t)
	}
	fn, ok := aggNames[t.text]
	if !ok {
		return AggSpec{}, fmt.Errorf("sparql: unknown aggregate %q", t.text)
	}
	spec := AggSpec{Func: fn}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return spec, err
	}
	if p.cur().kind == tokKeyword && p.cur().text == "DISTINCT" {
		p.next()
		spec.Distinct = true
	}
	switch p.cur().kind {
	case tokStar:
		if fn != AggCount {
			return spec, fmt.Errorf("sparql: only COUNT accepts *")
		}
		p.next()
	case tokVar:
		spec.Var = p.next().text
	default:
		return spec, fmt.Errorf("sparql: expected variable or * in aggregate, got %s", p.cur())
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return spec, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return spec, err
	}
	as, err := p.expect(tokVar, "result variable")
	if err != nil {
		return spec, err
	}
	spec.As = as.text
	return spec, nil
}

// validateGrouping enforces the SPARQL rule that, in an aggregate
// query, every plainly projected variable must appear in GROUP BY.
func validateGrouping(q *Query) error {
	if len(q.Aggregates) == 0 {
		if len(q.GroupBy) > 0 {
			return fmt.Errorf("sparql: GROUP BY without aggregate projection")
		}
		return nil
	}
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	for _, v := range q.Vars {
		if !grouped[v] {
			return fmt.Errorf("sparql: variable ?%s projected outside GROUP BY in aggregate query", v)
		}
	}
	return nil
}

func atoiStrict(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func (p *parser) orderKey() (OrderKey, bool, error) {
	t := p.cur()
	switch {
	case t.kind == tokVar:
		p.next()
		return OrderKey{Var: t.text}, true, nil
	case t.kind == tokKeyword && (t.text == "ASC" || t.text == "DESC"):
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return OrderKey{}, false, err
		}
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return OrderKey{}, false, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Var: v.text, Desc: t.text == "DESC"}, true, nil
	default:
		return OrderKey{}, false, nil
	}
}

func (p *parser) group() (*GroupGraphPattern, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	g := &GroupGraphPattern{}
	for {
		t := p.cur()
		switch {
		case t.kind == tokRBrace:
			p.next()
			return g, nil
		case t.kind == tokKeyword && t.text == "FILTER":
			p.next()
			e, err := p.filterExpr()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.next()
			sub, err := p.group()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, sub)
		case t.kind == tokLBrace:
			// { A } UNION { B } [UNION { C } ...]
			first, err := p.group()
			if err != nil {
				return nil, err
			}
			alts := []*GroupGraphPattern{first}
			for p.cur().kind == tokKeyword && p.cur().text == "UNION" {
				p.next()
				alt, err := p.group()
				if err != nil {
					return nil, err
				}
				alts = append(alts, alt)
			}
			if len(alts) == 1 {
				// plain nested group: merge its contents
				g.Triples = append(g.Triples, first.Triples...)
				g.Filters = append(g.Filters, first.Filters...)
				g.Optionals = append(g.Optionals, first.Optionals...)
				g.Unions = append(g.Unions, first.Unions...)
			} else {
				g.Unions = append(g.Unions, alts)
			}
		case t.kind == tokDot:
			p.next()
		default:
			if err := p.triplesSameSubject(g); err != nil {
				return nil, err
			}
		}
	}
}

// triplesSameSubject parses "subject pred obj (',' obj)* (';' pred obj ...)* '.'?".
func (p *parser) triplesSameSubject(g *GroupGraphPattern) error {
	subj, err := p.node()
	if err != nil {
		return err
	}
	for {
		pred, err := p.node()
		if err != nil {
			return err
		}
		for {
			obj, err := p.node()
			if err != nil {
				return err
			}
			g.Triples = append(g.Triples, TriplePattern{S: subj, P: pred, O: obj})
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.cur().kind == tokSemicolon {
			p.next()
			// allow trailing ';' before '.' or '}'
			if p.cur().kind == tokDot || p.cur().kind == tokRBrace {
				break
			}
			continue
		}
		break
	}
	if p.cur().kind == tokDot {
		p.next()
	}
	return nil
}

// node parses a variable, IRI, prefixed name, 'a', literal, or number.
func (p *parser) node() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return VarNode(t.text), nil
	case tokIRI:
		return TermNode(rdf.IRI(t.text)), nil
	case tokA:
		return TermNode(rdf.IRI(rdf.RDFType)), nil
	case tokPName:
		iri, err := p.expandPName(t.text)
		if err != nil {
			return Node{}, err
		}
		return TermNode(rdf.IRI(iri)), nil
	case tokString:
		lex := t.text
		switch p.cur().kind {
		case tokLangTag:
			tag := p.next().text
			return TermNode(rdf.LangLiteral(lex, tag)), nil
		case tokDTSep:
			p.next()
			dt, err := p.expect(tokIRI, "datatype IRI")
			if err != nil {
				return Node{}, err
			}
			return TermNode(rdf.TypedLiteral(lex, dt.text)), nil
		default:
			return TermNode(rdf.Literal(lex)), nil
		}
	case tokNumber:
		if strings.Contains(t.text, ".") {
			return TermNode(rdf.TypedLiteral(t.text, rdf.XSDDecimal)), nil
		}
		return TermNode(rdf.TypedLiteral(t.text, rdf.XSDInteger)), nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			return TermNode(rdf.TypedLiteral(strings.ToLower(t.text), rdf.XSDBoolean)), nil
		}
		return Node{}, fmt.Errorf("sparql: unexpected keyword %s in triple pattern", t)
	default:
		return Node{}, fmt.Errorf("sparql: unexpected %s in triple pattern", t)
	}
}

func (p *parser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", fmt.Errorf("sparql: malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", fmt.Errorf("sparql: undeclared prefix %q", prefix)
	}
	return base + local, nil
}

// filterExpr parses "( expr )" or a bare function call after FILTER.
func (p *parser) filterExpr() (Expr, error) {
	if p.cur().kind == tokLParen {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.unary()
}

// expr := and ( '||' and )*
func (p *parser) expr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOr {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opOr, l: left, r: right}
	}
	return left, nil
}

// andExpr := rel ( '&&' rel )*
func (p *parser) andExpr() (Expr, error) {
	left, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAnd {
		p.next()
		right, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opAnd, l: left, r: right}
	}
	return left, nil
}

// relExpr := unary ( cmpOp unary )?
func (p *parser) relExpr() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	var op binaryOp
	switch p.cur().kind {
	case tokEq:
		op = opEq
	case tokNeq:
		op = opNeq
	case tokLt:
		op = opLt
	case tokLte:
		op = opLte
	case tokGt:
		op = opGt
	case tokGte:
		op = opGte
	default:
		return left, nil
	}
	p.next()
	right, err := p.unary()
	if err != nil {
		return nil, err
	}
	return &binaryExpr{op: op, l: left, r: right}, nil
}

// unary := '!' unary | '(' expr ')' | FUNC '(' args ')' | var | literal
func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNot:
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokVar:
		p.next()
		return &varExpr{name: t.text}, nil
	case tokString:
		p.next()
		// expressions treat plain strings as strings; language tags and
		// datatypes are allowed but collapse to the lexical form
		switch p.cur().kind {
		case tokLangTag:
			p.next()
		case tokDTSep:
			p.next()
			if _, err := p.expect(tokIRI, "datatype IRI"); err != nil {
				return nil, err
			}
		}
		return &constExpr{v: Value{Kind: ValString, Str: t.text}}, nil
	case tokNumber:
		p.next()
		return &constExpr{v: Value{Kind: ValNumber, Num: mustParseFloat(t.text)}}, nil
	case tokIRI:
		p.next()
		return &constExpr{v: Value{Kind: ValTerm, Term: rdf.IRI(t.text)}}, nil
	case tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return &constExpr{v: Value{Kind: ValTerm, Term: rdf.IRI(iri)}}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE", "FALSE":
			p.next()
			return &constExpr{v: Value{Kind: ValBool, Bool: t.text == "TRUE"}}, nil
		default:
			return p.funcCall()
		}
	default:
		return nil, fmt.Errorf("sparql: unexpected %s in expression", t)
	}
}

func (p *parser) funcCall() (Expr, error) {
	name := p.next().text
	if !knownFunc(name) {
		return nil, fmt.Errorf("sparql: unknown function %q", name)
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.cur().kind != tokRParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return newFuncExpr(name, args)
}
