// Package sparql implements a SPARQL subset sufficient for the federated
// query workloads in the ALEX reproduction: SELECT queries with basic
// graph patterns, FILTER expressions, OPTIONAL, UNION, DISTINCT,
// ORDER BY, LIMIT and OFFSET, evaluated over the in-memory rdf.Graph.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF     tokenKind = iota
	tokIRI               // <...>
	tokPName             // prefix:local or :local
	tokVar               // ?name or $name
	tokString            // "..." with escapes
	tokNumber            // integer or decimal
	tokKeyword           // SELECT, WHERE, ... (uppercased)
	tokA                 // the keyword 'a' (rdf:type)
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokDot
	tokSemicolon
	tokComma
	tokStar
	tokEq
	tokNeq
	tokLt
	tokLte
	tokGt
	tokGte
	tokAnd
	tokOr
	tokNot
	tokLangTag // @en
	tokDTSep   // ^^
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "PREFIX": true, "DISTINCT": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"TRUE": true, "FALSE": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.in[l.pos]
		switch {
		case c == '<':
			// '<' starts an IRI only if a '>' follows before whitespace;
			// otherwise it is the less-than operator.
			if end := iriEnd(l.in[l.pos:]); end > 0 {
				l.emit(tokIRI, l.in[l.pos+1:l.pos+end], start)
				l.pos += end + 1
			} else if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(tokLte, "<=", start)
			} else {
				l.pos++
				l.emit(tokLt, "<", start)
			}
		case c == '?' || c == '$':
			l.pos++
			name := l.ident()
			if name == "" {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", start)
			}
			l.emit(tokVar, name, start)
		case c == '"':
			s, err := l.stringLit()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case c == '@':
			l.pos++
			tag := l.ident()
			if tag == "" {
				return nil, fmt.Errorf("sparql: empty language tag at offset %d", start)
			}
			l.emit(tokLangTag, tag, start)
		case c >= '0' && c <= '9' || (c == '-' || c == '+') && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
			l.emit(tokNumber, l.number(), start)
		case c == '{':
			l.pos++
			l.emit(tokLBrace, "{", start)
		case c == '}':
			l.pos++
			l.emit(tokRBrace, "}", start)
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(", start)
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")", start)
		case c == '.':
			l.pos++
			l.emit(tokDot, ".", start)
		case c == ';':
			l.pos++
			l.emit(tokSemicolon, ";", start)
		case c == ',':
			l.pos++
			l.emit(tokComma, ",", start)
		case c == '*':
			l.pos++
			l.emit(tokStar, "*", start)
		case c == '=':
			l.pos++
			l.emit(tokEq, "=", start)
		case c == '!':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(tokNeq, "!=", start)
			} else {
				l.pos++
				l.emit(tokNot, "!", start)
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(tokGte, ">=", start)
			} else {
				l.pos++
				l.emit(tokGt, ">", start)
			}
		case c == '&':
			if l.peekAt(1) != '&' {
				return nil, fmt.Errorf("sparql: stray '&' at offset %d", start)
			}
			l.pos += 2
			l.emit(tokAnd, "&&", start)
		case c == '|':
			if l.peekAt(1) != '|' {
				return nil, fmt.Errorf("sparql: stray '|' at offset %d", start)
			}
			l.pos += 2
			l.emit(tokOr, "||", start)
		case c == '^':
			if l.peekAt(1) != '^' {
				return nil, fmt.Errorf("sparql: stray '^' at offset %d", start)
			}
			l.pos += 2
			l.emit(tokDTSep, "^^", start)
		case c == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		default:
			word := l.pnameOrKeyword()
			if word == "" {
				return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, start)
			}
			upper := strings.ToUpper(word)
			switch {
			case word == "a":
				l.emit(tokA, "a", start)
			case keywords[upper] && !strings.Contains(word, ":"):
				l.emit(tokKeyword, upper, start)
			case strings.Contains(word, ":"):
				l.emit(tokPName, word, start)
			default:
				// bare word that is not a keyword: treat as function name
				l.emit(tokKeyword, upper, start)
			}
		}
	}
}

// iriEnd returns the index of the closing '>' if s (starting with '<')
// is an IRI reference, or 0 if it is not.
func iriEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '>':
			return i
		case ' ', '\t', '\n', '\r', '<':
			return 0
		}
	}
	return 0
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.in) {
		return 0
	}
	return l.in[l.pos+off]
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.in) {
		c := rune(l.in[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
			l.pos++
			continue
		}
		break
	}
	return l.in[start:l.pos]
}

func (l *lexer) pnameOrKeyword() string {
	start := l.pos
	for l.pos < len(l.in) {
		c := rune(l.in[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == ':' || c == '.' && l.pos > start {
			l.pos++
			continue
		}
		break
	}
	// trailing '.' belongs to the triple terminator, not the name
	for l.pos > start && l.in[l.pos-1] == '.' {
		l.pos--
	}
	return l.in[start:l.pos]
}

func (l *lexer) number() string {
	start := l.pos
	if l.in[l.pos] == '-' || l.in[l.pos] == '+' {
		l.pos++
	}
	dots := 0
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && dots == 0 && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
			dots++
			l.pos++
			continue
		}
		break
	}
	return l.in[start:l.pos]
}

func (l *lexer) stringLit() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.in) {
			return "", fmt.Errorf("sparql: unterminated string")
		}
		c := l.in[l.pos]
		if c == '"' {
			l.pos++
			return b.String(), nil
		}
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return "", fmt.Errorf("sparql: dangling escape in string")
			}
			switch l.in[l.pos+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", fmt.Errorf("sparql: invalid escape \\%c", l.in[l.pos+1])
			}
			l.pos += 2
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}
