package sparql

import (
	"testing"

	"alex/internal/rdf"
)

func TestConstructVocabularyMapping(t *testing.T) {
	g := testGraph()
	out, err := Construct(g, `CONSTRUCT { ?p <http://xmlns.com/foaf/0.1/name> ?n . }
		WHERE { ?p <http://ex/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 {
		t.Fatalf("constructed %d triples, want 3", out.Size())
	}
	if !out.Has(rdf.Triple{S: rdf.IRI("http://ex/alice"), P: rdf.IRI("http://xmlns.com/foaf/0.1/name"), O: rdf.Literal("Alice")}) {
		t.Fatal("mapped triple missing")
	}
}

func TestConstructSameAsMaterialization(t *testing.T) {
	g := rdf.NewGraph()
	g.Insert(rdf.Triple{S: rdf.IRI("http://a/x"), P: rdf.IRI("http://p/id"), O: rdf.Literal("k1")})
	g.Insert(rdf.Triple{S: rdf.IRI("http://b/y"), P: rdf.IRI("http://q/id"), O: rdf.Literal("k1")})
	out, err := Construct(g, `CONSTRUCT { ?u <`+rdf.OWLSameAs+`> ?v . } WHERE {
		?u <http://p/id> ?k . ?v <http://q/id> ?k .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(rdf.Triple{S: rdf.IRI("http://a/x"), P: rdf.IRI(rdf.OWLSameAs), O: rdf.IRI("http://b/y")}) {
		t.Fatalf("sameAs not constructed: %v", out.Triples())
	}
}

func TestConstructMultiTripleTemplate(t *testing.T) {
	g := testGraph()
	out, err := Construct(g, `
		PREFIX x: <http://out/>
		CONSTRUCT { ?p x:name ?n . ?p a x:Person . }
		WHERE { ?p <http://ex/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 6 {
		t.Fatalf("constructed %d triples, want 6", out.Size())
	}
	if !out.Has(rdf.Triple{S: rdf.IRI("http://ex/bob"), P: rdf.IRI(rdf.RDFType), O: rdf.IRI("http://out/Person")}) {
		t.Fatal("'a' in template not expanded")
	}
}

func TestConstructSkipsIllFormedTriples(t *testing.T) {
	g := testGraph()
	// ?n binds to literals: illegal in subject position, skipped.
	out, err := Construct(g, `CONSTRUCT { ?n <http://out/was> ?p . } WHERE { ?p <http://ex/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatalf("constructed %d ill-formed triples", out.Size())
	}
}

func TestConstructLimit(t *testing.T) {
	g := testGraph()
	out, err := Construct(g, `CONSTRUCT { ?p <http://out/n> ?n . } WHERE { ?p <http://ex/name> ?n . } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("size = %d, want 2", out.Size())
	}
}

func TestConstructWithFilterInWhere(t *testing.T) {
	g := testGraph()
	out, err := Construct(g, `CONSTRUCT { ?p <http://out/senior> ?a . }
		WHERE { ?p <http://ex/age> ?a . FILTER(?a > 28) }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("size = %d, want 2 (alice, carol)", out.Size())
	}
}

func TestConstructErrors(t *testing.T) {
	bad := []string{
		`CONSTRUCT { ?x <http://p> ?y . FILTER(?y > 1) } WHERE { ?x <http://p> ?y . }`,
		`CONSTRUCT { ?x <http://p> ?y . }`,
		`CONSTRUCT { ?x <http://p> ?y . } WHERE { ?x <http://p> ?y . } BOGUS`,
		`CONSTRUCT { ?x <http://p> ?y . } WHERE { ?x <http://p> ?y . } LIMIT -2`,
	}
	g := testGraph()
	for _, q := range bad {
		if _, err := Construct(g, q); err == nil {
			t.Errorf("Construct(%q) succeeded, want error", q)
		}
	}
}
