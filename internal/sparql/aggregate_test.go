package sparql

import (
	"testing"

	"alex/internal/rdf"
)

func aggGraph() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s, team string, pts string) {
		subj := rdf.IRI("http://ex/" + s)
		g.Insert(rdf.Triple{S: subj, P: rdf.IRI("http://ex/team"), O: rdf.Literal(team)})
		g.Insert(rdf.Triple{S: subj, P: rdf.IRI("http://ex/points"), O: rdf.TypedLiteral(pts, rdf.XSDInteger)})
	}
	add("p1", "Heat", "27")
	add("p2", "Heat", "19")
	add("p3", "Spurs", "21")
	add("p4", "Spurs", "14")
	add("p5", "Spurs", "9")
	return g
}

func TestAskQuery(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `ASK { ?p <http://ex/team> "Heat" . }`)
	if !res.Ask {
		t.Fatal("ASK = false, want true")
	}
	res = mustExec(t, g, `ASK { ?p <http://ex/team> "Lakers" . }`)
	if res.Ask {
		t.Fatal("ASK = true, want false")
	}
}

func TestCountStar(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?p <http://ex/team> ?t . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0]["n"]; got != rdf.TypedLiteral("5", rdf.XSDInteger) {
		t.Fatalf("count = %v", got)
	}
}

func TestCountOverEmpty(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?p <http://ex/team> "Lakers" . }`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "0" {
		t.Fatalf("rows = %+v, want single 0 row", res.Rows)
	}
}

func TestGroupByCount(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT ?t (COUNT(?p) AS ?n) WHERE { ?p <http://ex/team> ?t . } GROUP BY ?t`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	byTeam := map[string]string{}
	for _, r := range res.Rows {
		byTeam[r["t"].Value] = r["n"].Value
	}
	if byTeam["Heat"] != "2" || byTeam["Spurs"] != "3" {
		t.Fatalf("counts = %v", byTeam)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT ?t (SUM(?pts) AS ?sum) (AVG(?pts) AS ?avg) (MIN(?pts) AS ?min) (MAX(?pts) AS ?max)
		WHERE { ?p <http://ex/team> ?t . ?p <http://ex/points> ?pts . } GROUP BY ?t`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		switch r["t"].Value {
		case "Heat":
			if r["sum"].Value != "46" || r["avg"].Value != "23" || r["min"].Value != "19" || r["max"].Value != "27" {
				t.Fatalf("Heat aggregates = %v", r)
			}
		case "Spurs":
			if r["sum"].Value != "44" || r["min"].Value != "9" || r["max"].Value != "21" {
				t.Fatalf("Spurs aggregates = %v", r)
			}
		}
	}
}

func TestCountDistinct(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT (COUNT(DISTINCT ?t) AS ?teams) WHERE { ?p <http://ex/team> ?t . }`)
	if res.Rows[0]["teams"].Value != "2" {
		t.Fatalf("distinct teams = %v", res.Rows[0]["teams"])
	}
}

func TestAggregateOrderAndLimit(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `SELECT ?t (COUNT(?p) AS ?n) WHERE { ?p <http://ex/team> ?t . }
		GROUP BY ?t ORDER BY DESC(?n) LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0]["t"].Value != "Spurs" {
		t.Fatalf("top group = %+v", res.Rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	bad := []string{
		`SELECT ?p (COUNT(?x) AS ?n) WHERE { ?p <http://ex/team> ?x . }`,              // ?p not grouped
		`SELECT (SUM(*) AS ?n) WHERE { ?p <http://ex/team> ?x . }`,                    // SUM(*)
		`SELECT (BOGUS(?x) AS ?n) WHERE { ?p <http://ex/team> ?x . }`,                 // unknown fn
		`SELECT (COUNT(?x) AS ?n) WHERE { ?p <http://ex/team> ?x . } GROUP BY`,        // empty group by
		`SELECT ?p WHERE { ?p <http://ex/team> ?x . } GROUP BY ?p`,                    // group by without aggregate
		`SELECT (COUNT(?x)) WHERE { ?p <http://ex/team> ?x . }`,                       // missing AS
		`SELECT ?t (SUM(?t) AS ?s) WHERE { ?p <http://ex/team> ?t . } GROUP BY ?t ??`, // trailing garbage
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
	// SUM over non-numeric values errors at evaluation time.
	g := aggGraph()
	if _, err := Execute(g, `SELECT (SUM(?t) AS ?s) WHERE { ?p <http://ex/team> ?t . }`); err == nil {
		t.Error("SUM over strings succeeded")
	}
}

func TestAskWithWhereKeyword(t *testing.T) {
	g := aggGraph()
	res := mustExec(t, g, `ASK WHERE { ?p <http://ex/team> "Heat" . }`)
	if !res.Ask {
		t.Fatal("ASK WHERE failed")
	}
}
