package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"alex/internal/rdf"
)

// bruteForceBGP evaluates a basic graph pattern by enumerating every
// assignment of graph terms to variables — exponential, but an
// unarguable reference for small cases.
func bruteForceBGP(g *rdf.Graph, patterns []TriplePattern) []Binding {
	varSet := map[string]bool{}
	for _, tp := range patterns {
		for _, v := range tp.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	// Candidate terms: every term in the graph.
	termSet := map[rdf.Term]bool{}
	for _, t := range g.Triples() {
		termSet[t.S] = true
		termSet[t.P] = true
		termSet[t.O] = true
	}
	terms := make([]rdf.Term, 0, len(termSet))
	for t := range termSet {
		terms = append(terms, t)
	}

	var out []Binding
	var rec func(i int, b Binding)
	rec = func(i int, b Binding) {
		if i == len(vars) {
			for _, tp := range patterns {
				tri := rdf.Triple{
					S: substitute(tp.S, b),
					P: substitute(tp.P, b),
					O: substitute(tp.O, b),
				}
				if !g.Has(tri) {
					return
				}
			}
			out = append(out, b.Copy())
			return
		}
		for _, t := range terms {
			b[vars[i]] = t
			rec(i+1, b)
		}
		delete(b, vars[i])
	}
	rec(0, Binding{})
	return out
}

func substitute(n Node, b Binding) rdf.Term {
	if n.IsVar {
		return b[n.Var]
	}
	return n.Term
}

func canonicalize(vars []string, rows []Binding) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('|')
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

// TestEngineMatchesBruteForce compares the engine against the reference
// on randomly generated small graphs and random 1-3 pattern BGPs.
func TestEngineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20250706))
	for trial := 0; trial < 60; trial++ {
		g := rdf.NewGraph()
		nTriples := 3 + rng.Intn(10)
		for i := 0; i < nTriples; i++ {
			g.Insert(rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://s/%d", rng.Intn(4))),
				P: rdf.IRI(fmt.Sprintf("http://p/%d", rng.Intn(3))),
				O: rdf.Literal(fmt.Sprintf("o%d", rng.Intn(4))),
			})
		}
		nPatterns := 1 + rng.Intn(3)
		patterns := make([]TriplePattern, nPatterns)
		varNames := []string{"a", "b", "c"}
		node := func(kind int, pool string, n int) Node {
			if rng.Intn(2) == 0 {
				return VarNode(varNames[rng.Intn(len(varNames))])
			}
			switch kind {
			case 0:
				return TermNode(rdf.IRI(fmt.Sprintf("http://%s/%d", pool, rng.Intn(n))))
			default:
				return TermNode(rdf.Literal(fmt.Sprintf("o%d", rng.Intn(n))))
			}
		}
		for i := range patterns {
			patterns[i] = TriplePattern{
				S: node(0, "s", 4),
				P: node(0, "p", 3),
				O: node(1, "o", 4),
			}
		}

		q := &Query{Limit: -1, Where: &GroupGraphPattern{Triples: patterns}}
		got, err := Eval(g, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceBGP(g, patterns)

		gotC := canonicalize(got.Vars, got.Rows)
		wantC := canonicalize(got.Vars, want)
		if len(gotC) != len(wantC) {
			t.Fatalf("trial %d: engine %d rows, brute force %d rows\npatterns: %+v",
				trial, len(gotC), len(wantC), patterns)
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("trial %d: row %d differs:\n engine %s\n brute  %s", trial, i, gotC[i], wantC[i])
			}
		}
	}
}

func BenchmarkBGPJoin(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 2000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/%d", i))
		g.Insert(rdf.Triple{S: s, P: rdf.IRI("http://p/knows"), O: rdf.IRI(fmt.Sprintf("http://e/%d", (i+1)%2000))})
		g.Insert(rdf.Triple{S: s, P: rdf.IRI("http://p/name"), O: rdf.Literal(fmt.Sprintf("entity-%d", i))})
	}
	q, err := Parse(`SELECT ?n WHERE {
		?a <http://p/name> "entity-500" .
		?a <http://p/knows> ?b .
		?b <http://p/knows> ?c .
		?c <http://p/name> ?n .
	}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Eval(g, q)
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("rows=%d err=%v", len(res.Rows), err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const q = `PREFIX ex: <http://ex/> SELECT DISTINCT ?x ?y WHERE {
		?x ex:p ?y . FILTER(?y > 3 && CONTAINS(STR(?x), "e"))
		OPTIONAL { ?x ex:q ?z . }
	} ORDER BY DESC(?y) LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
