package sparql

import (
	"alex/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a
// concrete RDF term.
type Node struct {
	IsVar bool
	Var   string
	Term  rdf.Term
}

// VarNode returns a variable node.
func VarNode(name string) Node { return Node{IsVar: true, Var: name} }

// TermNode returns a concrete-term node.
func TermNode(t rdf.Term) Node { return Node{Term: t} }

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O Node
}

// Vars returns the distinct variable names in the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// GroupGraphPattern is a group: a basic graph pattern plus filters,
// optional sub-groups and union alternatives.
type GroupGraphPattern struct {
	Triples   []TriplePattern
	Filters   []Expr
	Optionals []*GroupGraphPattern
	// Unions is a list of union groups; each inner slice holds the
	// alternatives of one { A } UNION { B } UNION { C } construct.
	Unions [][]*GroupGraphPattern
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  string
	Desc bool
}

// Query is a parsed SELECT or ASK query.
type Query struct {
	Form     QueryForm
	Vars     []string // empty means SELECT * (ignored for ASK)
	Distinct bool
	// Aggregates holds (FUNC(?v) AS ?name) projections; when non-empty
	// the solution is grouped by GroupBy before the other modifiers.
	Aggregates []AggSpec
	GroupBy    []string
	Where      *GroupGraphPattern
	OrderBy    []OrderKey
	Limit      int // -1 when absent
	Offset     int
	Prefixes   map[string]string
}

// Expr is a FILTER expression.
type Expr interface {
	// Eval evaluates the expression under a binding. Errors represent
	// SPARQL expression errors, which make the enclosing filter false.
	Eval(b Binding) (Value, error)
	// ExprVars returns the variables mentioned by the expression.
	ExprVars() []string
}

// ValueKind tags the runtime type of an expression value.
type ValueKind uint8

// Expression value kinds.
const (
	ValBool ValueKind = iota
	ValNumber
	ValString
	ValTerm
)

// Value is the result of evaluating an expression.
type Value struct {
	Kind ValueKind
	Bool bool
	Num  float64
	Str  string
	Term rdf.Term
}

// Binding maps variable names to RDF terms.
type Binding map[string]rdf.Term

// Copy returns a shallow copy of the binding.
func (b Binding) Copy() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}
