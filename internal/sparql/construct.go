package sparql

import (
	"fmt"

	"alex/internal/rdf"
)

// ConstructQuery is a parsed CONSTRUCT query: a triple template
// instantiated once per solution of the WHERE clause. ALEX pipelines
// use it to materialize derived triples — most naturally owl:sameAs
// links or vocabulary-mapped copies of matched data.
type ConstructQuery struct {
	Template []TriplePattern
	Where    *GroupGraphPattern
	Limit    int
	Prefixes map[string]string
}

// ParseConstruct parses a CONSTRUCT query:
//
//	CONSTRUCT { template } WHERE { pattern } [LIMIT n]
func ParseConstruct(query string) (*ConstructQuery, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}

	for p.cur().kind == tokKeyword && p.cur().text == "PREFIX" {
		p.next()
		name, err := p.expect(tokPName, "prefix name")
		if err != nil {
			return nil, err
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return nil, err
		}
		p.prefixes[trimColon(name.text)] = iri.text
	}

	if err := p.expectKeyword("CONSTRUCT"); err != nil {
		return nil, err
	}
	tmplGroup, err := p.group()
	if err != nil {
		return nil, err
	}
	if len(tmplGroup.Filters) > 0 || len(tmplGroup.Optionals) > 0 || len(tmplGroup.Unions) > 0 {
		return nil, fmt.Errorf("sparql: CONSTRUCT template must contain only triples")
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.next()
	}
	where, err := p.group()
	if err != nil {
		return nil, err
	}
	q := &ConstructQuery{Template: tmplGroup.Triples, Where: where, Limit: -1, Prefixes: p.prefixes}
	if p.cur().kind == tokKeyword && p.cur().text == "LIMIT" {
		p.next()
		n, err := p.expect(tokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		q.Limit = atoiStrict(n.text)
		if q.Limit < 0 {
			return nil, fmt.Errorf("sparql: invalid LIMIT %q", n.text)
		}
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sparql: trailing input at %s", p.cur())
	}
	return q, nil
}

func trimColon(s string) string {
	if len(s) > 0 && s[len(s)-1] == ':' {
		return s[:len(s)-1]
	}
	return s
}

// Construct evaluates a CONSTRUCT query against a graph and returns the
// constructed triples as a new graph (sharing the input's dictionary).
// Template triples whose variables are unbound in a solution, or which
// would put a literal in subject position or a non-IRI in predicate
// position, are skipped for that solution, per SPARQL semantics.
func Construct(g *rdf.Graph, query string) (*rdf.Graph, error) {
	q, err := ParseConstruct(query)
	if err != nil {
		return nil, err
	}
	rows, err := evalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	out := rdf.NewGraphWithDict(g.Dict())
	emitted := 0
	for _, b := range rows {
		for _, tp := range q.Template {
			if q.Limit >= 0 && emitted >= q.Limit {
				return out, nil
			}
			tri, ok := instantiate(tp, b)
			if !ok {
				continue
			}
			if out.Insert(tri) {
				emitted++
			}
		}
	}
	return out, nil
}

func instantiate(tp TriplePattern, b Binding) (rdf.Triple, bool) {
	s, ok := bindNode(tp.S, b)
	if !ok || s.IsLiteral() {
		return rdf.Triple{}, false
	}
	p, ok := bindNode(tp.P, b)
	if !ok || !p.IsIRI() {
		return rdf.Triple{}, false
	}
	o, ok := bindNode(tp.O, b)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

func bindNode(n Node, b Binding) (rdf.Term, bool) {
	if !n.IsVar {
		return n.Term, true
	}
	t, ok := b[n.Var]
	return t, ok
}
