package sparql

import (
	"testing"

	"alex/internal/rdf"
)

// evalFilter parses a full query containing one FILTER and evaluates the
// filter expression directly under the given binding.
func evalFilter(t *testing.T, filter string, b Binding) (Value, error) {
	t.Helper()
	q, err := Parse(`SELECT ?x WHERE { ?x <http://p> ?y . FILTER` + filter + ` }`)
	if err != nil {
		t.Fatalf("parse %q: %v", filter, err)
	}
	if len(q.Where.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
	return q.Where.Filters[0].Eval(b)
}

func mustBool(t *testing.T, filter string, b Binding) bool {
	t.Helper()
	v, err := evalFilter(t, filter, b)
	if err != nil {
		t.Fatalf("eval %q: %v", filter, err)
	}
	ok, err := EffectiveBool(v)
	if err != nil {
		t.Fatalf("ebv %q: %v", filter, err)
	}
	return ok
}

func TestExprComparisons(t *testing.T) {
	b := Binding{"y": rdf.TypedLiteral("5", rdf.XSDInteger)}
	cases := []struct {
		filter string
		want   bool
	}{
		{`(?y = 5)`, true},
		{`(?y != 5)`, false},
		{`(?y < 6)`, true},
		{`(?y <= 5)`, true},
		{`(?y > 4)`, true},
		{`(?y >= 6)`, false},
		{`(?y = "5")`, true}, // numeric coercion
	}
	for _, c := range cases {
		if got := mustBool(t, c.filter, b); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestExprStringComparison(t *testing.T) {
	b := Binding{"y": rdf.Literal("banana")}
	if !mustBool(t, `(?y > "apple")`, b) {
		t.Error("lexicographic > failed")
	}
	if mustBool(t, `(?y = "cherry")`, b) {
		t.Error("inequal strings compared equal")
	}
}

func TestExprLogic(t *testing.T) {
	b := Binding{"y": rdf.TypedLiteral("5", rdf.XSDInteger)}
	cases := []struct {
		filter string
		want   bool
	}{
		{`(?y > 1 && ?y < 10)`, true},
		{`(?y > 9 && ?y < 10)`, false},
		{`(?y > 9 || ?y < 10)`, true},
		{`(!(?y = 5))`, false},
		{`(?y = 5 && !(?y = 6))`, true},
	}
	for _, c := range cases {
		if got := mustBool(t, c.filter, b); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestExprThreeValuedLogic(t *testing.T) {
	// ?z is unbound: (?z = 1) errors; FALSE && error must be false,
	// TRUE || error must be true (SPARQL three-valued logic).
	b := Binding{"y": rdf.TypedLiteral("5", rdf.XSDInteger)}
	if mustBool(t, `(?y = 6 && ?z = 1)`, b) {
		t.Error("false && error should be false")
	}
	if !mustBool(t, `(?y = 5 || ?z = 1)`, b) {
		t.Error("true || error should be true")
	}
	// error && true propagates the error
	if _, err := evalFilter(t, `(?z = 1 && ?y = 5)`, b); err == nil {
		t.Error("error && true should propagate error")
	}
}

func TestExprFunctions(t *testing.T) {
	b := Binding{
		"s":    rdf.Literal("Hello World"),
		"iri":  rdf.IRI("http://example.org/x"),
		"lang": rdf.LangLiteral("bonjour", "fr"),
		"num":  rdf.TypedLiteral("42", rdf.XSDInteger),
	}
	cases := []struct {
		filter string
		want   bool
	}{
		{`(CONTAINS(?s, "World"))`, true},
		{`(CONTAINS(?s, "world"))`, false},
		{`(CONTAINS(LCASE(?s), "world"))`, true},
		{`(STRSTARTS(?s, "Hello"))`, true},
		{`(STRENDS(?s, "World"))`, true},
		{`(STRLEN(?s) = 11)`, true},
		{`(UCASE(?s) = "HELLO WORLD")`, true},
		{`(ISIRI(?iri))`, true},
		{`(ISIRI(?s))`, false},
		{`(ISLITERAL(?s))`, true},
		{`(ISBLANK(?iri))`, false},
		{`(LANG(?lang) = "fr")`, true},
		{`(LANG(?s) = "")`, true},
		{`(DATATYPE(?num) = <` + rdf.XSDInteger + `>)`, true},
		{`(SAMETERM(?s, ?s))`, true},
		{`(SAMETERM(?s, ?iri))`, false},
		{`(STR(?iri) = "http://example.org/x")`, true},
		{`(BOUND(?s))`, true},
		{`(BOUND(?missing))`, false},
		{`(REGEX(?s, "^Hello"))`, true},
		{`(REGEX(?s, "world$", "i"))`, true},
		{`(REGEX(?s, "^Hello World$"))`, true},
		{`(REGEX(?s, "^World"))`, false},
	}
	for _, c := range cases {
		if got := mustBool(t, c.filter, b); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestExprUnboundVariableErrors(t *testing.T) {
	if _, err := evalFilter(t, `(?nope = 1)`, Binding{}); err == nil {
		t.Fatal("unbound variable evaluated without error")
	}
}

func TestExprFunctionArityChecked(t *testing.T) {
	bad := []string{
		`SELECT ?x WHERE { ?x <http://p> ?y . FILTER(CONTAINS(?y)) }`,
		`SELECT ?x WHERE { ?x <http://p> ?y . FILTER(STRLEN(?y, ?y)) }`,
		`SELECT ?x WHERE { ?x <http://p> ?y . FILTER(REGEX(?y)) }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("arity error not caught: %s", q)
		}
	}
}

func TestEffectiveBoolValues(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Value{Kind: ValBool, Bool: true}, true},
		{Value{Kind: ValBool}, false},
		{Value{Kind: ValNumber, Num: 1}, true},
		{Value{Kind: ValNumber}, false},
		{Value{Kind: ValString, Str: "x"}, true},
		{Value{Kind: ValString}, false},
		{Value{Kind: ValTerm, Term: rdf.TypedLiteral("true", rdf.XSDBoolean)}, true},
		{Value{Kind: ValTerm, Term: rdf.TypedLiteral("0", rdf.XSDInteger)}, false},
		{Value{Kind: ValTerm, Term: rdf.Literal("nonempty")}, true},
	}
	for _, c := range cases {
		got, err := EffectiveBool(c.v)
		if err != nil {
			t.Errorf("%+v: %v", c.v, err)
			continue
		}
		if got != c.want {
			t.Errorf("EffectiveBool(%+v) = %v, want %v", c.v, got, c.want)
		}
	}
	if _, err := EffectiveBool(Value{Kind: ValTerm, Term: rdf.IRI("http://x")}); err == nil {
		t.Error("IRI has no effective boolean value")
	}
}

func TestExprBoolConstants(t *testing.T) {
	b := Binding{"y": rdf.TypedLiteral("5", rdf.XSDInteger)}
	if !mustBool(t, `(true)`, b) {
		t.Error("true constant")
	}
	if mustBool(t, `(false)`, b) {
		t.Error("false constant")
	}
}
