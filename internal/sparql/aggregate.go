package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"alex/internal/rdf"
)

// QueryForm distinguishes SELECT from ASK queries.
type QueryForm uint8

// Supported query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
)

// AggFunc is an aggregate function name.
type AggFunc uint8

// Supported aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[string]AggFunc{
	"COUNT": AggCount,
	"SUM":   AggSum,
	"AVG":   AggAvg,
	"MIN":   AggMin,
	"MAX":   AggMax,
}

// AggSpec is one aggregate projection: (FUNC(?var) AS ?name).
// Var == "" means COUNT(*).
type AggSpec struct {
	Func AggFunc
	Var  string
	As   string
	// Distinct applies COUNT(DISTINCT ?v) semantics.
	Distinct bool
}

// aggregate groups rows by the GROUP BY variables and computes the
// aggregate projections, returning one row per group. When no GROUP BY
// is present all rows form a single group.
func aggregate(q *Query, rows []Binding) ([]Binding, error) {
	type group struct {
		key  Binding
		rows []Binding
	}
	var groups []*group
	index := map[string]*group{}
	for _, row := range rows {
		k := bindingKey(q.GroupBy, row)
		g := index[k]
		if g == nil {
			key := Binding{}
			for _, v := range q.GroupBy {
				if t, ok := row[v]; ok {
					key[v] = t
				}
			}
			g = &group{key: key}
			index[k] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, row)
	}
	// A grouped query over zero rows yields zero groups; an ungrouped
	// aggregate over zero rows yields one empty group (COUNT() = 0).
	if len(groups) == 0 && len(q.GroupBy) == 0 {
		groups = append(groups, &group{key: Binding{}})
	}

	out := make([]Binding, 0, len(groups))
	for _, g := range groups {
		row := g.key.Copy()
		for _, spec := range q.Aggregates {
			val, err := computeAggregate(spec, g.rows)
			if err != nil {
				return nil, err
			}
			row[spec.As] = val
		}
		out = append(out, row)
	}
	// Deterministic group order.
	sort.Slice(out, func(i, j int) bool {
		return bindingKey(q.GroupBy, out[i]) < bindingKey(q.GroupBy, out[j])
	})
	return out, nil
}

func computeAggregate(spec AggSpec, rows []Binding) (rdf.Term, error) {
	switch spec.Func {
	case AggCount:
		n := 0
		if spec.Var == "" {
			n = len(rows)
		} else if spec.Distinct {
			seen := map[rdf.Term]bool{}
			for _, r := range rows {
				if t, ok := r[spec.Var]; ok && !seen[t] {
					seen[t] = true
					n++
				}
			}
		} else {
			for _, r := range rows {
				if _, ok := r[spec.Var]; ok {
					n++
				}
			}
		}
		return rdf.TypedLiteral(strconv.Itoa(n), rdf.XSDInteger), nil
	case AggSum, AggAvg:
		sum := 0.0
		n := 0
		for _, r := range rows {
			t, ok := r[spec.Var]
			if !ok {
				continue
			}
			f, err := strconv.ParseFloat(t.Value, 64)
			if err != nil {
				return rdf.Term{}, fmt.Errorf("sparql: %s over non-numeric value %q", fnName(spec.Func), t.Value)
			}
			sum += f
			n++
		}
		if spec.Func == AggAvg {
			if n == 0 {
				return rdf.TypedLiteral("0", rdf.XSDDouble), nil
			}
			return rdf.TypedLiteral(formatFloat(sum/float64(n)), rdf.XSDDouble), nil
		}
		return rdf.TypedLiteral(formatFloat(sum), rdf.XSDDecimal), nil
	case AggMin, AggMax:
		var best rdf.Term
		have := false
		for _, r := range rows {
			t, ok := r[spec.Var]
			if !ok {
				continue
			}
			if !have {
				best = t
				have = true
				continue
			}
			c := compareTermsForOrder(t, best)
			if spec.Func == AggMin && c < 0 || spec.Func == AggMax && c > 0 {
				best = t
			}
		}
		if !have {
			return rdf.Literal(""), nil
		}
		return best, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate")
}

func fnName(f AggFunc) string {
	for name, fn := range aggNames {
		if fn == f {
			return name
		}
	}
	return "?"
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		return s
	}
	return s
}
