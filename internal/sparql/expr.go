package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"alex/internal/rdf"
)

type binaryOp uint8

const (
	opEq binaryOp = iota
	opNeq
	opLt
	opLte
	opGt
	opGte
	opAnd
	opOr
)

func mustParseFloat(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return f
}

type constExpr struct{ v Value }

func (e *constExpr) Eval(Binding) (Value, error) { return e.v, nil }
func (e *constExpr) ExprVars() []string          { return nil }

type varExpr struct{ name string }

func (e *varExpr) Eval(b Binding) (Value, error) {
	t, ok := b[e.name]
	if !ok {
		return Value{}, fmt.Errorf("unbound variable ?%s", e.name)
	}
	return Value{Kind: ValTerm, Term: t}, nil
}
func (e *varExpr) ExprVars() []string { return []string{e.name} }

type notExpr struct{ inner Expr }

func (e *notExpr) Eval(b Binding) (Value, error) {
	v, err := e.inner.Eval(b)
	if err != nil {
		return Value{}, err
	}
	bv, err := effectiveBool(v)
	if err != nil {
		return Value{}, err
	}
	return Value{Kind: ValBool, Bool: !bv}, nil
}
func (e *notExpr) ExprVars() []string { return e.inner.ExprVars() }

type binaryExpr struct {
	op   binaryOp
	l, r Expr
}

func (e *binaryExpr) ExprVars() []string {
	return append(e.l.ExprVars(), e.r.ExprVars()...)
}

func (e *binaryExpr) Eval(b Binding) (Value, error) {
	switch e.op {
	case opAnd, opOr:
		lv, lerr := e.l.Eval(b)
		var lb bool
		if lerr == nil {
			lb, lerr = boolOrErr(lv)
		}
		rv, rerr := e.r.Eval(b)
		var rb bool
		if rerr == nil {
			rb, rerr = boolOrErr(rv)
		}
		// SPARQL three-valued logic: AND is false if either side is
		// false; OR is true if either side is true; otherwise errors
		// propagate.
		if e.op == opAnd {
			if lerr == nil && !lb || rerr == nil && !rb {
				return Value{Kind: ValBool}, nil
			}
			if lerr != nil {
				return Value{}, lerr
			}
			if rerr != nil {
				return Value{}, rerr
			}
			return Value{Kind: ValBool, Bool: true}, nil
		}
		if lerr == nil && lb || rerr == nil && rb {
			return Value{Kind: ValBool, Bool: true}, nil
		}
		if lerr != nil {
			return Value{}, lerr
		}
		if rerr != nil {
			return Value{}, rerr
		}
		return Value{Kind: ValBool}, nil
	default:
		lv, err := e.l.Eval(b)
		if err != nil {
			return Value{}, err
		}
		rv, err := e.r.Eval(b)
		if err != nil {
			return Value{}, err
		}
		return compareValues(e.op, lv, rv)
	}
}

func boolOrErr(v Value) (bool, error) { return effectiveBool(v) }

// EffectiveBool exposes SPARQL's effective-boolean-value rule for use by
// engines built on top of this package (e.g. the federated processor).
func EffectiveBool(v Value) (bool, error) { return effectiveBool(v) }

// effectiveBool implements SPARQL's effective boolean value.
func effectiveBool(v Value) (bool, error) {
	switch v.Kind {
	case ValBool:
		return v.Bool, nil
	case ValNumber:
		return v.Num != 0, nil
	case ValString:
		return v.Str != "", nil
	case ValTerm:
		if v.Term.IsLiteral() {
			switch v.Term.EffectiveDatatype() {
			case rdf.XSDBoolean:
				return v.Term.Value == "true" || v.Term.Value == "1", nil
			case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
				f, err := strconv.ParseFloat(v.Term.Value, 64)
				return err == nil && f != 0, nil
			default:
				return v.Term.Value != "", nil
			}
		}
		return false, fmt.Errorf("no effective boolean value for %v", v.Term)
	}
	return false, fmt.Errorf("invalid value")
}

// asNumber attempts numeric interpretation of a value.
func asNumber(v Value) (float64, bool) {
	switch v.Kind {
	case ValNumber:
		return v.Num, true
	case ValString:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	case ValTerm:
		if v.Term.IsLiteral() {
			f, err := strconv.ParseFloat(v.Term.Value, 64)
			return f, err == nil
		}
	}
	return 0, false
}

// asString returns the string form of a value.
func asString(v Value) string {
	switch v.Kind {
	case ValString:
		return v.Str
	case ValNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case ValBool:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		return v.Term.Value
	}
}

func compareValues(op binaryOp, l, r Value) (Value, error) {
	// Term-vs-term equality compares full terms (IRI vs IRI etc.).
	if l.Kind == ValTerm && r.Kind == ValTerm && !l.Term.IsLiteral() && !r.Term.IsLiteral() {
		eq := l.Term == r.Term
		switch op {
		case opEq:
			return Value{Kind: ValBool, Bool: eq}, nil
		case opNeq:
			return Value{Kind: ValBool, Bool: !eq}, nil
		default:
			return Value{}, fmt.Errorf("cannot order non-literal terms")
		}
	}
	// Prefer numeric comparison when both sides are numbers.
	if lf, lok := asNumber(l); lok {
		if rf, rok := asNumber(r); rok {
			return Value{Kind: ValBool, Bool: cmpFloat(op, lf, rf)}, nil
		}
	}
	ls, rs := asString(l), asString(r)
	var res bool
	switch op {
	case opEq:
		res = ls == rs
	case opNeq:
		res = ls != rs
	case opLt:
		res = ls < rs
	case opLte:
		res = ls <= rs
	case opGt:
		res = ls > rs
	case opGte:
		res = ls >= rs
	}
	return Value{Kind: ValBool, Bool: res}, nil
}

func cmpFloat(op binaryOp, a, b float64) bool {
	switch op {
	case opEq:
		return a == b
	case opNeq:
		return a != b
	case opLt:
		return a < b
	case opLte:
		return a <= b
	case opGt:
		return a > b
	case opGte:
		return a >= b
	}
	return false
}

// funcExpr is a builtin function call.
type funcExpr struct {
	name string
	args []Expr
}

var funcArity = map[string]int{
	"BOUND":     1,
	"STR":       1,
	"LANG":      1,
	"DATATYPE":  1,
	"ISIRI":     1,
	"ISURI":     1,
	"ISLITERAL": 1,
	"ISBLANK":   1,
	"LCASE":     1,
	"UCASE":     1,
	"STRLEN":    1,
	"CONTAINS":  2,
	"STRSTARTS": 2,
	"STRENDS":   2,
	"REGEX":     -2, // 2 or 3 args
	"SAMETERM":  2,
}

func knownFunc(name string) bool {
	_, ok := funcArity[name]
	return ok
}

func newFuncExpr(name string, args []Expr) (Expr, error) {
	want := funcArity[name]
	switch {
	case want == -2:
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("sparql: %s expects 2 or 3 arguments, got %d", name, len(args))
		}
	case len(args) != want:
		return nil, fmt.Errorf("sparql: %s expects %d arguments, got %d", name, want, len(args))
	}
	return &funcExpr{name: name, args: args}, nil
}

func (e *funcExpr) ExprVars() []string {
	var out []string
	for _, a := range e.args {
		out = append(out, a.ExprVars()...)
	}
	return out
}

func (e *funcExpr) Eval(b Binding) (Value, error) {
	if e.name == "BOUND" {
		ve, ok := e.args[0].(*varExpr)
		if !ok {
			return Value{}, fmt.Errorf("BOUND requires a variable argument")
		}
		_, bound := b[ve.name]
		return Value{Kind: ValBool, Bool: bound}, nil
	}
	vals := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := a.Eval(b)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	switch e.name {
	case "STR":
		return Value{Kind: ValString, Str: asString(vals[0])}, nil
	case "LANG":
		if vals[0].Kind == ValTerm && vals[0].Term.IsLiteral() {
			return Value{Kind: ValString, Str: vals[0].Term.Lang}, nil
		}
		return Value{Kind: ValString}, nil
	case "DATATYPE":
		if vals[0].Kind == ValTerm && vals[0].Term.IsLiteral() {
			return Value{Kind: ValTerm, Term: rdf.IRI(vals[0].Term.EffectiveDatatype())}, nil
		}
		return Value{}, fmt.Errorf("DATATYPE of non-literal")
	case "ISIRI", "ISURI":
		return Value{Kind: ValBool, Bool: vals[0].Kind == ValTerm && vals[0].Term.IsIRI()}, nil
	case "ISLITERAL":
		return Value{Kind: ValBool, Bool: vals[0].Kind == ValTerm && vals[0].Term.IsLiteral() || vals[0].Kind == ValString || vals[0].Kind == ValNumber}, nil
	case "ISBLANK":
		return Value{Kind: ValBool, Bool: vals[0].Kind == ValTerm && vals[0].Term.IsBlank()}, nil
	case "LCASE":
		return Value{Kind: ValString, Str: strings.ToLower(asString(vals[0]))}, nil
	case "UCASE":
		return Value{Kind: ValString, Str: strings.ToUpper(asString(vals[0]))}, nil
	case "STRLEN":
		return Value{Kind: ValNumber, Num: float64(len([]rune(asString(vals[0]))))}, nil
	case "CONTAINS":
		return Value{Kind: ValBool, Bool: strings.Contains(asString(vals[0]), asString(vals[1]))}, nil
	case "STRSTARTS":
		return Value{Kind: ValBool, Bool: strings.HasPrefix(asString(vals[0]), asString(vals[1]))}, nil
	case "STRENDS":
		return Value{Kind: ValBool, Bool: strings.HasSuffix(asString(vals[0]), asString(vals[1]))}, nil
	case "SAMETERM":
		if vals[0].Kind == ValTerm && vals[1].Kind == ValTerm {
			return Value{Kind: ValBool, Bool: vals[0].Term == vals[1].Term}, nil
		}
		return Value{Kind: ValBool, Bool: asString(vals[0]) == asString(vals[1])}, nil
	case "REGEX":
		return evalRegex(vals)
	}
	return Value{}, fmt.Errorf("unimplemented function %s", e.name)
}

// evalRegex implements REGEX with the "i" flag, using substring matching
// semantics for plain patterns and anchoring for ^ and $. Full regular
// expression syntax is intentionally unsupported to stay stdlib-light;
// CONTAINS/STRSTARTS/STRENDS cover the workloads in this repo.
func evalRegex(vals []Value) (Value, error) {
	text := asString(vals[0])
	pat := asString(vals[1])
	if len(vals) == 3 && strings.Contains(asString(vals[2]), "i") {
		text = strings.ToLower(text)
		pat = strings.ToLower(pat)
	}
	anchStart := strings.HasPrefix(pat, "^")
	anchEnd := strings.HasSuffix(pat, "$")
	pat = strings.TrimPrefix(pat, "^")
	pat = strings.TrimSuffix(pat, "$")
	var ok bool
	switch {
	case anchStart && anchEnd:
		ok = text == pat
	case anchStart:
		ok = strings.HasPrefix(text, pat)
	case anchEnd:
		ok = strings.HasSuffix(text, pat)
	default:
		ok = strings.Contains(text, pat)
	}
	return Value{Kind: ValBool, Bool: ok}, nil
}
