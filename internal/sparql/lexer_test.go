package sparql

import "testing"

func kinds(t *testing.T, in string) []tokenKind {
	t.Helper()
	toks, err := lex(in)
	if err != nil {
		t.Fatalf("lex(%q): %v", in, err)
	}
	out := make([]tokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	got := kinds(t, `SELECT ?x WHERE { ?x <http://p> "v" . }`)
	want := []tokenKind{tokKeyword, tokVar, tokKeyword, tokLBrace, tokVar, tokIRI, tokString, tokDot, tokRBrace, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLexLessThanVsIRI(t *testing.T) {
	// '<' followed by '>' before whitespace is an IRI; otherwise an
	// operator.
	toks, err := lex(`FILTER(?x < 5 && ?y <= 3) <http://iri>`)
	if err != nil {
		t.Fatal(err)
	}
	var sawLt, sawLte, sawIRI bool
	for _, tok := range toks {
		switch tok.kind {
		case tokLt:
			sawLt = true
		case tokLte:
			sawLte = true
		case tokIRI:
			sawIRI = true
		}
	}
	if !sawLt || !sawLte || !sawIRI {
		t.Fatalf("lt=%v lte=%v iri=%v", sawLt, sawLte, sawIRI)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex(`= != > >= && || ! ^^`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tokEq, tokNeq, tokGt, tokGte, tokAnd, tokOr, tokNot, tokDTSep, tokEOF}
	for i, w := range want {
		if toks[i].kind != w {
			t.Fatalf("token %d = %d, want %d", i, toks[i].kind, w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex(`42 -7 3.25 +1`)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"42", "-7", "3.25", "+1"}
	for i, want := range texts {
		if toks[i].kind != tokNumber || toks[i].text != want {
			t.Fatalf("token %d = %q (%d)", i, toks[i].text, toks[i].kind)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`"a\nb\t\"c\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a\nb\t\"c\\" {
		t.Fatalf("string = %q", toks[0].text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("SELECT # a comment\n?x")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].kind != tokVar {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexLangTag(t *testing.T) {
	toks, err := lex(`"hola"@es`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokLangTag || toks[1].text != "es" {
		t.Fatalf("lang tag = %+v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`"dangling\`,
		`"bad\q"`,
		`? `,
		`@`,
		`&x`,
		`|x`,
		`^x`,
		"\x01",
	}
	for _, in := range bad {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q) succeeded, want error", in)
		}
	}
}

func TestLexPNameVsKeyword(t *testing.T) {
	toks, err := lex(`foaf:name select COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokPName || toks[0].text != "foaf:name" {
		t.Fatalf("pname = %+v", toks[0])
	}
	if toks[1].kind != tokKeyword || toks[1].text != "SELECT" {
		t.Fatalf("keyword casing = %+v", toks[1])
	}
	if toks[2].kind != tokKeyword || toks[2].text != "COUNT" {
		t.Fatalf("bare function word = %+v", toks[2])
	}
}

func TestLexAKeywordBoundary(t *testing.T) {
	toks, err := lex(`?x a ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokA {
		t.Fatalf("'a' lexed as %+v", toks[1])
	}
	// 'a' inside a longer word must not be the keyword.
	toks, err = lex(`?x abc:d ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokPName {
		t.Fatalf("'abc:d' lexed as %+v", toks[1])
	}
}

func TestLexTrailingDotAfterPName(t *testing.T) {
	toks, err := lex(`ex:thing .`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "ex:thing" || toks[1].kind != tokDot {
		t.Fatalf("tokens = %+v", toks[:2])
	}
}
