package sparql

import (
	"testing"

	"alex/internal/rdf"
)

func TestParseBasicSelect(t *testing.T) {
	q, err := Parse(`SELECT ?s ?o WHERE { ?s <http://p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "s" || q.Vars[1] != "o" {
		t.Fatalf("Vars = %v", q.Vars)
	}
	if len(q.Where.Triples) != 1 {
		t.Fatalf("Triples = %d, want 1", len(q.Where.Triples))
	}
	tp := q.Where.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "s" {
		t.Errorf("subject = %+v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term != rdf.IRI("http://p") {
		t.Errorf("predicate = %+v", tp.P)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
		PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT * WHERE { ?x foaf:name "Alice" . }`)
	if err != nil {
		t.Fatal(err)
	}
	tp := q.Where.Triples[0]
	if tp.P.Term != rdf.IRI("http://xmlns.com/foaf/0.1/name") {
		t.Fatalf("prefixed name expanded to %v", tp.P.Term)
	}
	if tp.O.Term != rdf.Literal("Alice") {
		t.Fatalf("object = %v", tp.O.Term)
	}
}

func TestParseAKeyword(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x a <http://ex/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Triples[0].P.Term != rdf.IRI(rdf.RDFType) {
		t.Fatalf("'a' expanded to %v", q.Where.Triples[0].P.Term)
	}
}

func TestParseAbbreviations(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?x <http://p> "a", "b" ; <http://q> "c" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(q.Where.Triples); n != 3 {
		t.Fatalf("triples = %d, want 3", n)
	}
}

func TestParseTypedAndLangLiterals(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?x <http://p> "5"^^<` + rdf.XSDInteger + `> .
		?x <http://q> "hi"@en .
		?x <http://r> 42 .
		?x <http://s> 3.5 .
		?x <http://t> true .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{
		rdf.TypedLiteral("5", rdf.XSDInteger),
		rdf.LangLiteral("hi", "en"),
		rdf.TypedLiteral("42", rdf.XSDInteger),
		rdf.TypedLiteral("3.5", rdf.XSDDecimal),
		rdf.TypedLiteral("true", rdf.XSDBoolean),
	}
	for i, w := range want {
		if got := q.Where.Triples[i].O.Term; got != w {
			t.Errorf("object %d = %v, want %v", i, got, w)
		}
	}
}

func TestParseFilterOptionalUnion(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		?x <http://p> ?v .
		FILTER(?v > 3 && ?v < 10)
		OPTIONAL { ?x <http://q> ?w . }
		{ ?x <http://r> "a" . } UNION { ?x <http://r> "b" . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
	if len(q.Where.Optionals) != 1 {
		t.Fatalf("optionals = %d", len(q.Where.Optionals))
	}
	if len(q.Where.Unions) != 1 || len(q.Where.Unions[0]) != 2 {
		t.Fatalf("unions = %+v", q.Where.Unions)
	}
}

func TestParseSolutionModifiers(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }
		ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT not set")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "y" || q.OrderBy[1].Var != "x" {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("Limit/Offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseNestedGroupMerges(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { { ?x <http://p> ?y . } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Triples) != 1 {
		t.Fatalf("nested group not merged: %+v", q.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE { ?x }`,
		`SELECT ?x WHERE { ?x <http://p> ?y `,
		`SELECT ?x WHERE { ?x unknown:p ?y . }`,
		`SELECT ?x WHERE { ?x <http://p> ?y . } LIMIT -1`,
		`SELECT ?x WHERE { ?x <http://p> ?y . } BOGUS`,
		`SELECT ?x WHERE { FILTER(NOSUCHFN(?x)) ?x <http://p> ?y . }`,
		`SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?y >) }`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestTriplePatternVars(t *testing.T) {
	tp := TriplePattern{S: VarNode("x"), P: TermNode(rdf.IRI("http://p")), O: VarNode("x")}
	vars := tp.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("Vars = %v, want [x]", vars)
	}
}
