package sparql

import (
	"fmt"
	"sort"
	"strings"

	"alex/internal/rdf"
)

// Result holds query solutions in projection order. For ASK queries
// Rows is empty and Ask carries the answer.
type Result struct {
	Vars []string
	Rows []Binding
	Ask  bool
}

// Execute parses and evaluates a query against a graph.
func Execute(g *rdf.Graph, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Eval(g, q)
}

// Eval evaluates a parsed query against a graph.
func Eval(g *rdf.Graph, q *Query) (*Result, error) {
	rows, err := evalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	return Finalize(q, rows)
}

// Finalize applies aggregation, projection, DISTINCT, ORDER BY, OFFSET,
// and LIMIT to raw solutions. It is shared with the federated engine.
func Finalize(q *Query, rows []Binding) (*Result, error) {
	if q.Form == FormAsk {
		return &Result{Ask: len(rows) > 0}, nil
	}
	vars := append([]string(nil), q.Vars...)
	if len(q.Aggregates) > 0 {
		agg, err := aggregate(q, rows)
		if err != nil {
			return nil, err
		}
		rows = agg
		// Projection: the grouped variables that were projected, then
		// the aggregate result names.
		for _, spec := range q.Aggregates {
			vars = append(vars, spec.As)
		}
	}
	if len(vars) == 0 {
		seen := map[string]bool{}
		collectVars(q.Where, func(v string) {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		})
	}

	projected := make([]Binding, 0, len(rows))
	for _, row := range rows {
		pr := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := row[v]; ok {
				pr[v] = t
			}
		}
		projected = append(projected, pr)
	}

	if q.Distinct {
		seen := map[string]bool{}
		uniq := projected[:0]
		for _, row := range projected {
			k := bindingKey(vars, row)
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, row)
			}
		}
		projected = uniq
	}

	if len(q.OrderBy) > 0 {
		sort.SliceStable(projected, func(i, j int) bool {
			for _, key := range q.OrderBy {
				c := compareTermsForOrder(projected[i][key.Var], projected[j][key.Var])
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	return &Result{Vars: vars, Rows: projected}, nil
}

func collectVars(g *GroupGraphPattern, fn func(string)) {
	if g == nil {
		return
	}
	for _, tp := range g.Triples {
		for _, v := range tp.Vars() {
			fn(v)
		}
	}
	for _, o := range g.Optionals {
		collectVars(o, fn)
	}
	for _, alts := range g.Unions {
		for _, a := range alts {
			collectVars(a, fn)
		}
	}
}

func bindingKey(vars []string, b Binding) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func compareTermsForOrder(a, b rdf.Term) int {
	as, bs := a.Value, b.Value
	// numeric-aware ordering
	var af, bf float64
	if _, errA := fmt.Sscanf(as, "%g", &af); errA == nil {
		if _, errB := fmt.Sscanf(bs, "%g", &bf); errB == nil {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(as, bs)
}

// evalGroup evaluates a group pattern, extending each input binding.
func evalGroup(g *rdf.Graph, grp *GroupGraphPattern, input []Binding) ([]Binding, error) {
	rows := input

	// Basic graph pattern: extend bindings pattern by pattern in
	// selectivity order (fewest estimated matches first, bound vars
	// propagated as we go).
	patterns := append([]TriplePattern(nil), grp.Triples...)
	done := make([]bool, len(patterns))
	for range patterns {
		idx := chooseNextPattern(g, patterns, done, rows)
		if idx < 0 {
			break
		}
		done[idx] = true
		var next []Binding
		for _, b := range rows {
			matchPattern(g, patterns[idx], b, func(nb Binding) {
				next = append(next, nb)
			})
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}

	// UNION blocks join with current rows.
	for _, alts := range grp.Unions {
		var merged []Binding
		for _, alt := range alts {
			sub, err := evalGroup(g, alt, rows)
			if err != nil {
				return nil, err
			}
			merged = append(merged, sub...)
		}
		rows = merged
		if len(rows) == 0 {
			break
		}
	}

	// OPTIONAL: left outer join.
	for _, opt := range grp.Optionals {
		var next []Binding
		for _, b := range rows {
			sub, err := evalGroup(g, opt, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				next = append(next, b)
			} else {
				next = append(next, sub...)
			}
		}
		rows = next
	}

	// FILTER: errors make the filter false (SPARQL semantics).
	for _, f := range grp.Filters {
		var kept []Binding
		for _, b := range rows {
			v, err := f.Eval(b)
			if err != nil {
				continue
			}
			ok, err := effectiveBool(v)
			if err != nil || !ok {
				continue
			}
			kept = append(kept, b)
		}
		rows = kept
	}
	return rows, nil
}

// chooseNextPattern picks the undone pattern with the lowest estimated
// cardinality given the variables bound in the first row (a cheap but
// effective greedy join order).
func chooseNextPattern(g *rdf.Graph, patterns []TriplePattern, done []bool, rows []Binding) int {
	best := -1
	bestCost := -1
	var sample Binding
	if len(rows) > 0 {
		sample = rows[0]
	}
	for i, tp := range patterns {
		if done[i] {
			continue
		}
		cost := estimate(g, tp, sample)
		if best < 0 || cost < bestCost {
			best = i
			bestCost = cost
		}
	}
	return best
}

func estimate(g *rdf.Graph, tp TriplePattern, b Binding) int {
	s, haveS := resolveNode(g, tp.S, b)
	p, haveP := resolveNode(g, tp.P, b)
	o, haveO := resolveNode(g, tp.O, b)
	if s == rdf.NoID && haveS || p == rdf.NoID && haveP || o == rdf.NoID && haveO {
		return 0 // a bound term not in the graph: zero matches
	}
	switch {
	case haveS && haveP && haveO:
		return 1
	case haveS && haveP:
		return len(g.Objects(s, p))
	case haveP && haveO:
		return len(g.Subjects(p, o))
	case haveS || haveO:
		return 64
	case haveP:
		return 4096
	default:
		return g.Size()
	}
}

// resolveNode maps a pattern node to a term ID under a binding. The bool
// reports whether the position is bound. A bound term missing from the
// graph's dictionary resolves to (NoID, true).
func resolveNode(g *rdf.Graph, n Node, b Binding) (rdf.ID, bool) {
	var t rdf.Term
	if n.IsVar {
		bound, ok := b[n.Var]
		if !ok {
			return rdf.NoID, false
		}
		t = bound
	} else {
		t = n.Term
	}
	id, ok := g.Dict().Lookup(t)
	if !ok {
		return rdf.NoID, true
	}
	return id, true
}

// matchPattern finds all extensions of binding b matching tp in g.
func matchPattern(g *rdf.Graph, tp TriplePattern, b Binding, emit func(Binding)) {
	s, haveS := resolveNode(g, tp.S, b)
	p, haveP := resolveNode(g, tp.P, b)
	o, haveO := resolveNode(g, tp.O, b)
	if haveS && s == rdf.NoID || haveP && p == rdf.NoID || haveO && o == rdf.NoID {
		return
	}
	g.ForEachMatchIDs(s, p, o, haveS, haveP, haveO, func(ms, mp, mo rdf.ID) bool {
		nb := b.Copy()
		if tp.S.IsVar && !haveS {
			nb[tp.S.Var] = g.Dict().Term(ms)
		}
		if tp.P.IsVar && !haveP {
			nb[tp.P.Var] = g.Dict().Term(mp)
		}
		if tp.O.IsVar && !haveO {
			nb[tp.O.Var] = g.Dict().Term(mo)
		}
		// same-variable repetition inside one pattern (?x ?p ?x etc.)
		if !sameVarConsistent(tp, ms, mp, mo) {
			return true
		}
		emit(nb)
		return true
	})
}

// sameVarConsistent rejects matches where one variable occupies several
// positions of the pattern but matched different terms.
func sameVarConsistent(tp TriplePattern, s, p, o rdf.ID) bool {
	if tp.S.IsVar && tp.O.IsVar && tp.S.Var == tp.O.Var && s != o {
		return false
	}
	if tp.S.IsVar && tp.P.IsVar && tp.S.Var == tp.P.Var && s != p {
		return false
	}
	if tp.P.IsVar && tp.O.IsVar && tp.P.Var == tp.O.Var && p != o {
		return false
	}
	return true
}
